"""Tests for the vectorised Metropolis sampling engine."""

import numpy as np
import pytest

from repro.annealer.engine import (
    IsingSampler,
    batched_metropolis,
    colour_classes,
    sparse_coupling_matrix,
)
from repro.exceptions import AnnealerError
from repro.ising.model import IsingModel
from repro.ising.solver import BruteForceIsingSolver, geometric_temperature_schedule


def random_ising(num_variables, seed, density=1.0):
    rng = np.random.default_rng(seed)
    couplings = {}
    for i in range(num_variables):
        for j in range(i + 1, num_variables):
            if rng.random() <= density:
                couplings[(i, j)] = float(rng.normal())
    return IsingModel(num_variables=num_variables,
                      linear=rng.normal(size=num_variables),
                      couplings=couplings)


class TestColourClasses:
    def test_classes_cover_all_variables(self):
        ising = random_ising(8, 0, density=0.4)
        classes = colour_classes(ising)
        covered = sorted(int(v) for group in classes for v in group)
        assert covered == list(range(8))

    def test_no_edge_within_a_class(self):
        ising = random_ising(10, 1, density=0.3)
        classes = colour_classes(ising)
        for group in classes:
            members = set(int(v) for v in group)
            for (i, j) in ising.couplings:
                assert not (i in members and j in members)

    def test_isolated_variables_share_one_class(self):
        ising = IsingModel(num_variables=5, linear=np.ones(5), couplings={})
        classes = colour_classes(ising)
        assert len(classes) == 1


class TestSparseCouplingMatrix:
    def test_symmetric(self):
        ising = random_ising(6, 2, density=0.5)
        matrix = sparse_coupling_matrix(ising).toarray()
        np.testing.assert_allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    def test_values(self):
        ising = IsingModel(num_variables=3, linear=np.zeros(3),
                           couplings={(0, 2): 1.5})
        matrix = sparse_coupling_matrix(ising).toarray()
        assert matrix[0, 2] == 1.5 and matrix[2, 0] == 1.5

    def test_empty_couplings(self):
        ising = IsingModel(num_variables=4, linear=np.ones(4), couplings={})
        assert sparse_coupling_matrix(ising).nnz == 0


class TestIsingSampler:
    def test_output_shape_and_values(self):
        ising = random_ising(6, 3)
        sampler = IsingSampler(ising)
        out = sampler.anneal([1.0, 0.5, 0.1], num_replicas=7, random_state=0)
        assert out.shape == (7, 6)
        assert set(np.unique(out)) <= {-1, 1}

    def test_finds_ground_state_of_small_problem(self):
        ising = random_ising(8, 4)
        exact = BruteForceIsingSolver().ground_energy(ising)
        sampler = IsingSampler(ising)
        scale = ising.max_abs_coefficient
        temperatures = geometric_temperature_schedule(150, 3.0 * scale,
                                                      0.01 * scale)
        samples = sampler.anneal(temperatures, num_replicas=40, random_state=1)
        energies = ising.energies(samples)
        assert energies.min() == pytest.approx(exact, rel=1e-9)

    def test_deterministic_with_seed(self):
        ising = random_ising(6, 5)
        sampler = IsingSampler(ising)
        a = sampler.anneal([1.0, 0.1], 5, random_state=3)
        b = sampler.anneal([1.0, 0.1], 5, random_state=3)
        np.testing.assert_array_equal(a, b)

    def test_initial_spins_shape_checked(self):
        ising = random_ising(4, 6)
        sampler = IsingSampler(ising)
        with pytest.raises(AnnealerError):
            sampler.anneal([1.0], 3, initial_spins=np.ones((2, 4)))

    def test_invalid_temperatures_rejected(self):
        ising = random_ising(4, 7)
        sampler = IsingSampler(ising)
        with pytest.raises(AnnealerError):
            sampler.anneal([], 3)
        with pytest.raises(AnnealerError):
            sampler.anneal([1.0, -0.5], 3)

    def test_low_temperature_keeps_good_start(self):
        # Starting at the ground state and annealing at a tiny temperature
        # must not leave it (sanity of the Metropolis acceptance rule).
        ising = random_ising(6, 8)
        ground = BruteForceIsingSolver().solve(ising).best_sample
        sampler = IsingSampler(ising)
        start = np.tile(ground, (4, 1)).astype(np.float64)
        out = sampler.anneal([1e-6] * 5, 4, random_state=0, initial_spins=start)
        np.testing.assert_array_equal(out, np.tile(ground, (4, 1)))


class TestClusterMoves:
    def test_cluster_flip_preserves_correctness(self):
        # With ferromagnetic chains, cluster moves must still sample valid
        # low-energy states (and find the ground state of a chain problem).
        n = 6
        couplings = {(i, i + 1): -2.0 for i in range(n - 1)}
        linear = np.zeros(n)
        linear[0] = 0.5  # a weak field the whole chain should align against
        ising = IsingModel(num_variables=n, linear=linear, couplings=couplings)
        sampler = IsingSampler(ising, clusters=[np.arange(n)])
        temperatures = geometric_temperature_schedule(40, 3.0, 0.01)
        samples = sampler.anneal(temperatures, num_replicas=20, random_state=0)
        energies = ising.energies(samples)
        exact = BruteForceIsingSolver().ground_energy(ising)
        assert energies.min() == pytest.approx(exact)

    def test_cluster_moves_speed_up_chain_reorientation(self):
        # A strongly coupled chain in a weak opposing field: single-spin
        # dynamics at low temperature cannot reorient it, cluster moves can.
        n = 8
        couplings = {(i, i + 1): -2.0 for i in range(n - 1)}
        linear = np.full(n, 0.1)  # prefers all spins -1
        ising = IsingModel(num_variables=n, linear=linear, couplings=couplings)
        start = np.ones((30, n))  # aligned the wrong way
        temperatures = [0.05] * 10

        plain = IsingSampler(ising)
        stuck = plain.anneal(temperatures, 30, random_state=0,
                             initial_spins=start.copy())
        clustered = IsingSampler(ising, clusters=[np.arange(n)])
        moved = clustered.anneal(temperatures, 30, random_state=0,
                                 initial_spins=start.copy())
        assert ising.energies(moved).mean() < ising.energies(stuck).mean()

    def test_empty_cluster_ignored(self):
        ising = random_ising(4, 9)
        sampler = IsingSampler(ising, clusters=[np.array([], dtype=np.intp)])
        assert sampler.clusters == []


class TestBatchedMetropolisWrapper:
    def test_wrapper_matches_sampler_with_same_seed(self):
        ising = random_ising(5, 10)
        a = batched_metropolis(ising, [1.0, 0.5], 4, random_state=2)
        b = IsingSampler(ising).anneal([1.0, 0.5], 4, random_state=2)
        np.testing.assert_array_equal(a, b)
