"""Tests for the simulated D-Wave machine front end and unembedding."""

import numpy as np
import pytest

from repro.annealer.chimera import ChimeraGraph
from repro.annealer.embedded import embed_ising
from repro.annealer.embedding import TriangleCliqueEmbedder
from repro.annealer.ice import ICEModel
from repro.annealer.machine import (
    AnnealerParameters,
    AnnealResult,
    OverheadModel,
    QuantumAnnealerSimulator,
)
from repro.annealer.parallel import parallel_copies, parallelization_factor
from repro.annealer.schedule import AnnealSchedule
from repro.annealer.unembed import unembed_sample, unembed_samples
from repro.exceptions import AnnealerError
from repro.ising.solver import BruteForceIsingSolver
from repro.mimo.system import MimoUplink
from repro.transform.reduction import MLToIsingReducer


def make_reduced(num_users=4, constellation="BPSK", seed=0, snr_db=None):
    link = MimoUplink(num_users=num_users, constellation=constellation)
    channel_use = link.transmit(random_state=seed, snr_db=snr_db)
    return MLToIsingReducer().reduce(channel_use)


@pytest.fixture(scope="module")
def small_machine():
    return QuantumAnnealerSimulator(ChimeraGraph.ideal(6, 6))


class TestAnnealerParameters:
    def test_defaults(self):
        parameters = AnnealerParameters()
        assert parameters.extended_range is True
        assert parameters.num_anneals >= 1

    def test_with_num_anneals(self):
        parameters = AnnealerParameters().with_num_anneals(7)
        assert parameters.num_anneals == 7

    def test_validation(self):
        with pytest.raises(Exception):
            AnnealerParameters(chain_strength=-1.0)
        with pytest.raises(Exception):
            AnnealerParameters(num_anneals=0)


class TestOverheadModel:
    def test_total(self):
        model = OverheadModel(preprocessing_us=10.0, programming_us=5.0,
                              readout_per_anneal_us=2.0)
        assert model.total_us(3) == pytest.approx(10.0 + 5.0 + 6.0)

    def test_defaults_dominate_anneal_time(self):
        # The Section 7 observation: overheads are orders of magnitude above
        # the pure anneal time today.
        assert OverheadModel().total_us(100) > 1000.0


class TestParallelization:
    def test_formula(self):
        # 16 logical qubits -> 80 physical; 2031 / 80 ~= 25.
        assert parallelization_factor(16) == pytest.approx(2031 / 80.0)

    def test_at_least_one(self):
        assert parallelization_factor(60) >= 1.0

    def test_too_large_problem_rejected(self):
        with pytest.raises(AnnealerError):
            parallelization_factor(120)

    def test_parallel_copies_integral(self):
        assert parallel_copies(16) == int(2031 // 80)

    def test_geometry_efficiency(self):
        full = parallelization_factor(16, geometry_efficiency=1.0)
        derated = parallelization_factor(16, geometry_efficiency=0.5)
        assert derated == pytest.approx(full / 2.0)
        with pytest.raises(AnnealerError):
            parallelization_factor(16, geometry_efficiency=0.0)


class TestUnembedding:
    def make_embedded(self, num_users=3, seed=1):
        reduced = make_reduced(num_users=num_users, seed=seed)
        embedder = TriangleCliqueEmbedder(ChimeraGraph.ideal(4, 4))
        embedding = embedder.embed(reduced.ising.num_variables)
        return reduced, embed_ising(reduced.ising, embedding, chain_strength=4.0)

    def test_intact_chains_unembed_exactly(self):
        reduced, embedded = self.make_embedded()
        logical_truth = reduced.ground_truth_spins()
        chains = embedded.compact_chains
        physical = np.empty(embedded.num_physical, dtype=np.int8)
        for logical_index, chain in chains.items():
            physical[list(chain)] = logical_truth[logical_index]
        recovered = unembed_sample(embedded, physical, random_state=0)
        np.testing.assert_array_equal(recovered, logical_truth)

    def test_majority_vote_resolves_broken_chain(self):
        reduced, embedded = self.make_embedded(num_users=4)
        chains = embedded.compact_chains
        logical_truth = reduced.ground_truth_spins()
        physical = np.empty(embedded.num_physical, dtype=np.int8)
        for logical_index, chain in chains.items():
            physical[list(chain)] = logical_truth[logical_index]
        # Flip a single qubit of chain 0 (chain length is 2 here, so force a
        # longer problem for a strict-majority case below).
        chain0 = list(chains[0])
        physical[chain0[0]] = -logical_truth[0]
        logical, report = unembed_samples(embedded, physical[None, :],
                                          random_state=0)
        assert report.broken_chains == 1
        # With a 2-qubit chain the vote is a tie, so only check the rest.
        np.testing.assert_array_equal(logical[0][1:], logical_truth[1:])

    def test_majority_wins_on_longer_chains(self):
        reduced = make_reduced(num_users=8, seed=2)
        embedder = TriangleCliqueEmbedder(ChimeraGraph.ideal(4, 4))
        embedding = embedder.embed(8)  # chain length 3
        embedded = embed_ising(reduced.ising, embedding, chain_strength=4.0)
        truth = reduced.ground_truth_spins()
        chains = embedded.compact_chains
        physical = np.empty(embedded.num_physical, dtype=np.int8)
        for logical_index, chain in chains.items():
            physical[list(chain)] = truth[logical_index]
        # Corrupt one qubit out of three: majority must still recover.
        physical[list(chains[2])[0]] = -truth[2]
        logical, report = unembed_samples(embedded, physical[None, :],
                                          random_state=0)
        np.testing.assert_array_equal(logical[0], truth)
        assert report.broken_chains == 1
        assert report.tie_breaks == 0
        assert 0 < report.broken_fraction < 1

    def test_shape_validation(self):
        _, embedded = self.make_embedded()
        with pytest.raises(AnnealerError):
            unembed_samples(embedded, np.ones((2, 3), dtype=np.int8))


class TestQuantumAnnealerSimulator:
    def test_run_returns_result(self, small_machine):
        reduced = make_reduced(num_users=4, seed=3)
        parameters = AnnealerParameters(num_anneals=20)
        result = small_machine.run(reduced.ising, parameters, random_state=0)
        assert isinstance(result, AnnealResult)
        assert result.num_anneals == 20
        assert result.solutions.total_reads == 20
        assert result.parallelization >= 1.0
        assert result.compute_time_us > 0

    def test_noise_free_machine_finds_ground_state(self):
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(6, 6),
                                           ice=ICEModel.disabled())
        reduced = make_reduced(num_users=6, constellation="QPSK", seed=4)
        exact = BruteForceIsingSolver(max_variables=12).ground_energy(reduced.ising)
        parameters = AnnealerParameters(
            schedule=AnnealSchedule(anneal_time_us=2.0, pause_time_us=2.0),
            num_anneals=40)
        result = machine.run(reduced.ising, parameters, random_state=1)
        assert result.best_energy == pytest.approx(exact, abs=1e-6)
        assert result.ground_state_probability(exact) > 0.2

    def test_deterministic_with_seed(self, small_machine):
        reduced = make_reduced(num_users=4, seed=5)
        parameters = AnnealerParameters(num_anneals=10)
        a = small_machine.run(reduced.ising, parameters, random_state=42)
        b = small_machine.run(reduced.ising, parameters, random_state=42)
        np.testing.assert_array_equal(a.solutions.samples, b.solutions.samples)
        np.testing.assert_array_equal(a.solutions.num_occurrences,
                                      b.solutions.num_occurrences)

    def test_solution_probabilities_sum_to_one(self, small_machine):
        reduced = make_reduced(num_users=4, seed=6)
        result = small_machine.run(reduced.ising,
                                   AnnealerParameters(num_anneals=15),
                                   random_state=0)
        assert result.solution_probabilities().sum() == pytest.approx(1.0)

    def test_compute_time_accounting(self, small_machine):
        reduced = make_reduced(num_users=4, seed=7)
        schedule = AnnealSchedule(anneal_time_us=1.0, pause_time_us=1.0)
        parameters = AnnealerParameters(schedule=schedule, num_anneals=10)
        result = small_machine.run(reduced.ising, parameters, random_state=0)
        expected = 10 * 2.0 / result.parallelization
        assert result.compute_time_us == pytest.approx(expected)

    def test_embedding_cache_reused(self, small_machine):
        first = small_machine.embedding_for(8)
        second = small_machine.embedding_for(8)
        assert first is second

    def test_explicit_embedding_accepted(self, small_machine):
        reduced = make_reduced(num_users=4, seed=8)
        embedding = TriangleCliqueEmbedder(small_machine.topology).embed(4)
        result = small_machine.run(reduced.ising,
                                   AnnealerParameters(num_anneals=5),
                                   random_state=0, embedding=embedding)
        assert result.embedded.embedding is embedding

    def test_invalid_construction(self):
        with pytest.raises(AnnealerError):
            QuantumAnnealerSimulator(hot_temperature=0.1, cold_temperature=1.0)

    def test_best_bits_consistent_with_best_spins(self, small_machine):
        reduced = make_reduced(num_users=4, seed=9)
        result = small_machine.run(reduced.ising,
                                   AnnealerParameters(num_anneals=10),
                                   random_state=0)
        np.testing.assert_array_equal(result.best_bits,
                                      (result.best_spins + 1) // 2)


class TestRunKernelKnob:
    def test_invalid_kernel_rejected(self, small_machine):
        reduced = make_reduced(num_users=2, seed=4)
        with pytest.raises(AnnealerError):
            small_machine.run(reduced.ising, kernel="simd")

    def test_pinned_colour_matches_auto(self, small_machine):
        # Embedded problems keep the colour kernel under auto, so pinning it
        # reproduces the default stream bit for bit.
        reduced = make_reduced(num_users=3, seed=4)
        parameters = AnnealerParameters(num_anneals=8)
        auto = small_machine.run(reduced.ising, parameters, random_state=5)
        pinned = small_machine.run(reduced.ising, parameters, random_state=5,
                                   kernel="colour")
        np.testing.assert_array_equal(auto.solutions.samples,
                                      pinned.solutions.samples)


class TestSamplerCache:
    """The structure-keyed warm sampler cache of the machine front end."""

    def _machine(self, cache):
        return QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4),
                                        sampler_cache_size=cache)

    def _solutions(self, machine, reduced_list, num_anneals=12):
        parameters = AnnealerParameters(num_anneals=num_anneals)
        return [machine.run(reduced.ising, parameters, random_state=seed)
                for seed, reduced in enumerate(reduced_list)]

    def test_cached_runs_bit_identical_to_uncached(self):
        reduced = [make_reduced(num_users=3, constellation="QPSK", seed=s,
                                snr_db=12.0) for s in range(5)]
        cold = self._solutions(self._machine(0), reduced)
        warm = self._solutions(self._machine(8), reduced)
        for a, b in zip(cold, warm):
            np.testing.assert_array_equal(a.solutions.samples,
                                          b.solutions.samples)
            np.testing.assert_array_equal(a.solutions.energies,
                                          b.solutions.energies)
            np.testing.assert_array_equal(a.solutions.num_occurrences,
                                          b.solutions.num_occurrences)

    def test_same_structure_jobs_hit_the_cache(self):
        machine = self._machine(8)
        reduced = [make_reduced(num_users=3, constellation="QPSK", seed=s,
                                snr_db=12.0) for s in range(4)]
        self._solutions(machine, reduced)
        info = machine.sampler_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 3
        assert info["entries"] == 1

    def test_distinct_structures_get_distinct_entries(self):
        machine = self._machine(8)
        a = make_reduced(num_users=2, constellation="QPSK", seed=1, snr_db=12.0)
        b = make_reduced(num_users=3, constellation="BPSK", seed=2, snr_db=12.0)
        self._solutions(machine, [a, b, a, b])
        info = machine.sampler_cache_info()
        assert info["misses"] == 2
        assert info["hits"] == 2
        assert info["entries"] == 2

    def test_capacity_evicts_least_recently_used(self):
        machine = self._machine(1)
        a = make_reduced(num_users=2, constellation="QPSK", seed=1, snr_db=12.0)
        b = make_reduced(num_users=3, constellation="BPSK", seed=2, snr_db=12.0)
        self._solutions(machine, [a, b, a])
        info = machine.sampler_cache_info()
        assert info["entries"] == 1
        # a evicted by b, then b evicted by a: every lookup missed.
        assert info["misses"] == 3
        assert info["hits"] == 0

    def test_zero_capacity_disables_cache(self):
        machine = self._machine(0)
        reduced = [make_reduced(num_users=2, seed=s, snr_db=12.0)
                   for s in range(3)]
        self._solutions(machine, reduced)
        info = machine.sampler_cache_info()
        assert info == {"capacity": 0, "entries": 0, "hits": 0, "misses": 0}

    def test_clear_drops_entries_keeps_counters(self):
        machine = self._machine(8)
        reduced = [make_reduced(num_users=2, seed=s, snr_db=12.0)
                   for s in range(2)]
        self._solutions(machine, reduced)
        machine.clear_sampler_cache()
        info = machine.sampler_cache_info()
        assert info["entries"] == 0
        assert info["hits"] + info["misses"] == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(Exception):
            QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4),
                                     sampler_cache_size=-1)

    def test_batched_packs_cache_across_calls(self):
        machine = self._machine(8)
        parameters = AnnealerParameters(num_anneals=10)
        packs = [[make_reduced(num_users=3, constellation="QPSK",
                               seed=10 * call + s, snr_db=12.0).ising
                  for s in range(3)] for call in range(3)]
        for call, pack in enumerate(packs):
            machine.run_batch(pack, parameters, random_state=call)
        info = machine.sampler_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 2
