"""Tests for the anneal schedule (anneal time, pause)."""

import numpy as np
import pytest

from repro.annealer.schedule import AnnealSchedule
from repro.exceptions import AnnealerError


class TestConstruction:
    def test_defaults(self):
        schedule = AnnealSchedule()
        assert schedule.anneal_time_us == 1.0
        assert not schedule.has_pause
        assert schedule.duration_us == 1.0

    def test_with_pause(self):
        schedule = AnnealSchedule(anneal_time_us=1.0, pause_time_us=10.0,
                                  pause_position=0.3)
        assert schedule.has_pause
        assert schedule.duration_us == 11.0

    def test_anneal_time_range_enforced(self):
        with pytest.raises(AnnealerError):
            AnnealSchedule(anneal_time_us=0.5)
        with pytest.raises(AnnealerError):
            AnnealSchedule(anneal_time_us=301.0)

    def test_negative_pause_rejected(self):
        with pytest.raises(AnnealerError):
            AnnealSchedule(pause_time_us=-1.0)

    def test_invalid_pause_position_rejected(self):
        with pytest.raises(Exception):
            AnnealSchedule(pause_position=1.5)

    def test_with_pause_and_without_pause_helpers(self):
        schedule = AnnealSchedule(anneal_time_us=2.0)
        paused = schedule.with_pause(5.0, pause_position=0.4)
        assert paused.pause_time_us == 5.0
        assert paused.pause_position == 0.4
        assert paused.anneal_time_us == 2.0
        unpaused = paused.without_pause()
        assert not unpaused.has_pause


class TestTemperatureProfile:
    def test_length_scales_with_anneal_time(self):
        short = AnnealSchedule(anneal_time_us=1.0).temperature_profile(
            sweeps_per_us=10, hot=2.0, cold=0.1)
        long = AnnealSchedule(anneal_time_us=10.0).temperature_profile(
            sweeps_per_us=10, hot=2.0, cold=0.1)
        assert long.size == pytest.approx(10 * short.size, rel=0.1)

    def test_monotone_decreasing_without_pause(self):
        profile = AnnealSchedule(anneal_time_us=2.0).temperature_profile(
            sweeps_per_us=20, hot=2.0, cold=0.05)
        assert profile[0] == pytest.approx(2.0)
        assert profile[-1] == pytest.approx(0.05)
        assert np.all(np.diff(profile) < 0)

    def test_pause_adds_constant_temperature_segment(self):
        schedule = AnnealSchedule(anneal_time_us=1.0, pause_time_us=2.0,
                                  pause_position=0.5)
        profile = schedule.temperature_profile(sweeps_per_us=10, hot=2.0,
                                               cold=0.05)
        no_pause = schedule.without_pause().temperature_profile(
            sweeps_per_us=10, hot=2.0, cold=0.05)
        assert profile.size == no_pause.size + 20
        pause_temperature = 2.0 * (0.05 / 2.0) ** 0.5
        assert np.count_nonzero(np.isclose(profile, pause_temperature)) >= 20

    def test_pause_position_sets_pause_temperature(self):
        early = AnnealSchedule(anneal_time_us=1.0, pause_time_us=1.0,
                               pause_position=0.15)
        late = AnnealSchedule(anneal_time_us=1.0, pause_time_us=1.0,
                              pause_position=0.55)
        early_profile = early.temperature_profile(sweeps_per_us=20, hot=2.0,
                                                  cold=0.05)
        late_profile = late.temperature_profile(sweeps_per_us=20, hot=2.0,
                                                cold=0.05)
        # Counting the most common value identifies the pause temperature.
        def pause_temp(profile):
            values, counts = np.unique(np.round(profile, 12), return_counts=True)
            return values[np.argmax(counts)]
        assert pause_temp(early_profile) > pause_temp(late_profile)

    def test_minimum_two_ramp_sweeps(self):
        profile = AnnealSchedule(anneal_time_us=1.0).temperature_profile(
            sweeps_per_us=0.5, hot=1.0, cold=0.1)
        assert profile.size >= 2

    def test_invalid_temperatures_rejected(self):
        schedule = AnnealSchedule()
        with pytest.raises(AnnealerError):
            schedule.temperature_profile(sweeps_per_us=10, hot=0.1, cold=1.0)
        with pytest.raises(Exception):
            schedule.temperature_profile(sweeps_per_us=10, hot=1.0, cold=-1.0)
