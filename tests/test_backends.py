"""Backend dispatch, fallback and draw-stream identity tests.

The ``backend=`` seam promises three things:

* **dispatch** — ``"auto"`` resolves to numba when importable, then to the
  C extension when a compiler is available, then to the NumPy reference
  loops; explicitly requesting an unavailable compiled backend fails loudly;
* **fallback** — with every compiled backend unavailable (numba import
  failure simulated by poisoning the import machinery, cext by clearing its
  probe cache on a disabled compiler list), ``"auto"`` lands on numpy and
  everything still runs;
* **identity** — seeded samples are bit-for-bit identical across all
  *available* backends, for both kernels, with and without clusters, across
  multi-block packs, ``refresh_values`` rebinds and the full machine model.

Identity tests iterate over :func:`available_backends`, so on a machine
without numba they cover numpy↔cext and CI's numba matrix entry extends the
same assertions to numba.
"""

import builtins
import hashlib
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.annealer import backends
from repro.annealer.backends import BACKENDS, available_backends
from repro.annealer.engine import BlockDiagonalSampler, IsingSampler
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.annealer.chimera import ChimeraGraph
from repro.decoder.quamax import QuAMaxDecoder
from repro.exceptions import AnnealerError, DetectionError
from repro.ising.model import IsingModel
from repro.ising.solver import (
    SimulatedAnnealingSolver,
    geometric_temperature_schedule,
)

COMPILED = [name for name in available_backends() if name != "numpy"]


def random_ising(num_variables, seed, density=1.0):
    rng = np.random.default_rng(seed)
    couplings = {}
    for i in range(num_variables):
        for j in range(i + 1, num_variables):
            if rng.random() <= density:
                couplings[(i, j)] = float(rng.normal())
    return IsingModel(num_variables=num_variables,
                      linear=rng.normal(size=num_variables),
                      couplings=couplings)


# The embedded-shaped cluster workload, shared with the equivalence and
# golden suites so they all exercise one problem family.
from cluster_workloads import build_path_chain_problem as path_chain_ising  # noqa: E402


def schedule(num_sweeps, hot=5.0, cold=0.05):
    return geometric_temperature_schedule(num_sweeps, hot, cold)


@pytest.fixture
def no_numba(monkeypatch):
    """Simulate an environment where ``import numba`` fails."""
    original_import = builtins.__import__

    def poisoned(name, *args, **kwargs):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba disabled for this test")
        return original_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", poisoned)
    monkeypatch.setitem(backends._NUMBA_STATE, "checked", False)
    monkeypatch.setitem(backends._NUMBA_STATE, "available", False)
    yield


@pytest.fixture
def no_cext(monkeypatch):
    """Simulate an environment with no working C compiler."""
    monkeypatch.setitem(backends._CEXT_STATE, "checked", False)
    monkeypatch.setitem(backends._CEXT_STATE, "lib", None)
    monkeypatch.setattr(backends, "_COMPILERS", ())
    monkeypatch.setattr(backends, "_cache_dir",
                        lambda: backends.Path("/nonexistent/no-cache"))
    yield


class TestDispatch:
    def test_known_backends(self):
        assert BACKENDS == ("auto", "numpy", "numba", "cext")
        assert available_backends()[0] == "numpy"

    def test_invalid_backend_rejected_everywhere(self):
        ising = random_ising(6, 0)
        with pytest.raises(AnnealerError):
            backends.resolve_backend("fortran")
        with pytest.raises(AnnealerError):
            IsingSampler(ising, backend="fortran")
        with pytest.raises(DetectionError):
            QuAMaxDecoder(backend="fortran")
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(2, 2))
        with pytest.raises(AnnealerError):
            machine.run(ising, AnnealerParameters(num_anneals=1),
                        random_state=0, backend="fortran")

    def test_numpy_always_resolves(self):
        assert backends.resolve_backend("numpy") == "numpy"
        sampler = IsingSampler(random_ising(5, 1), backend="numpy")
        assert sampler.selected_backend == "numpy"

    def test_auto_prefers_numba_when_importable(self, monkeypatch):
        monkeypatch.setitem(backends._NUMBA_STATE, "checked", True)
        monkeypatch.setitem(backends._NUMBA_STATE, "available", True)
        assert backends.resolve_backend("auto") == "numba"

    def test_auto_falls_back_to_numpy_without_compiled_backends(
            self, no_numba, no_cext):
        assert not backends.numba_available()
        assert not backends.cext_available()
        assert backends.available_backends() == ("numpy",)
        assert backends.resolve_backend("auto") == "numpy"
        # The fallback is not merely nominal: a sampler built under these
        # conditions anneals on the reference loops.
        sampler = IsingSampler(random_ising(6, 2), backend="auto")
        assert sampler.selected_backend == "numpy"
        samples = sampler.anneal(schedule(10), 4, random_state=3)
        assert samples.shape == (4, 6)

    def test_explicit_numba_raises_when_absent(self, no_numba):
        with pytest.raises(AnnealerError):
            backends.resolve_backend("numba")
        with pytest.raises(AnnealerError):
            IsingSampler(random_ising(5, 3), backend="numba")

    def test_explicit_cext_raises_when_absent(self, no_cext):
        with pytest.raises(AnnealerError):
            backends.resolve_backend("cext")

    def test_auto_uses_cext_between_numba_and_numpy(self, no_numba):
        if not backends.cext_available():
            pytest.skip("no C compiler in this environment")
        assert backends.resolve_backend("auto") == "cext"

    def test_warmup_is_idempotent(self):
        for backend in available_backends():
            backends.warmup(backend)
            backends.warmup(backend)


@pytest.mark.parametrize("backend", COMPILED)
class TestCompiledIdentity:
    """Seeded streams must be bit-identical to the numpy reference loops."""

    def test_dense_kernel_stream(self, backend, array_digest):
        ising = random_ising(17, 10)
        temperatures = schedule(60)
        reference = IsingSampler(ising, kernel="dense", backend="numpy")
        compiled = IsingSampler(ising, kernel="dense", backend=backend)
        assert compiled.selected_backend == backend
        for prefix in (1, 30, 60):
            expected = reference.anneal(temperatures[:prefix], 12,
                                        random_state=11)
            actual = compiled.anneal(temperatures[:prefix], 12,
                                     random_state=11)
            np.testing.assert_array_equal(expected, actual)
            assert array_digest(expected) == array_digest(actual)

    def test_colour_kernel_stream(self, backend, array_digest):
        ising = random_ising(20, 12, density=0.25)
        temperatures = schedule(60)
        expected = IsingSampler(ising, kernel="colour",
                                backend="numpy").anneal(
            temperatures, 12, random_state=13)
        actual = IsingSampler(ising, kernel="colour", backend=backend).anneal(
            temperatures, 12, random_state=13)
        np.testing.assert_array_equal(expected, actual)
        assert array_digest(expected) == array_digest(actual)

    @pytest.mark.parametrize("kernel", ["dense", "colour"])
    def test_cluster_moves_shared(self, backend, kernel):
        ising = random_ising(12, 14)
        clusters = [np.array([0, 1, 2], dtype=np.intp),
                    np.array([7, 8], dtype=np.intp)]
        temperatures = schedule(40)
        expected = IsingSampler(ising, clusters=clusters, kernel=kernel,
                                backend="numpy").anneal(
            temperatures, 8, random_state=15)
        actual = IsingSampler(ising, clusters=clusters, kernel=kernel,
                              backend=backend).anneal(
            temperatures, 8, random_state=15)
        np.testing.assert_array_equal(expected, actual)

    @pytest.mark.parametrize("kernel,density", [("dense", 1.0),
                                                ("colour", 0.3)])
    def test_multi_block_streams(self, backend, kernel, density):
        rng = np.random.default_rng(16)
        base = random_ising(9, 17, density=density)
        problems = [
            IsingModel(num_variables=9, linear=rng.normal(size=9),
                       couplings={key: float(rng.normal())
                                  for key in base.couplings})
            for _ in range(3)
        ]
        temperatures = schedule(35)
        expected = BlockDiagonalSampler(problems, kernel=kernel,
                                        backend="numpy").anneal(
            temperatures, 7, [np.random.default_rng(90 + b) for b in range(3)])
        actual = BlockDiagonalSampler(problems, kernel=kernel,
                                      backend=backend).anneal(
            temperatures, 7, [np.random.default_rng(90 + b) for b in range(3)])
        np.testing.assert_array_equal(expected, actual)
        # ...and the multi-block compiled anneal equals per-block serial
        # compiled anneals (block draw streams are independent).
        packed = BlockDiagonalSampler(problems, kernel=kernel,
                                      backend=backend)
        for b, block in enumerate(packed.split_samples(actual)):
            serial = IsingSampler(problems[b], kernel=kernel,
                                  backend=backend).anneal(
                temperatures, 7,
                random_state=np.random.default_rng(90 + b))
            np.testing.assert_array_equal(block, serial)

    def test_refresh_values_rebinds_compiled_kernels(self, backend):
        base = random_ising(10, 18)
        rng = np.random.default_rng(5)
        replacement = IsingModel(
            num_variables=10, linear=rng.normal(size=10),
            couplings={key: float(rng.normal()) for key in base.couplings})
        temperatures = schedule(30)
        for kernel in ("dense", "colour"):
            refreshed = IsingSampler(base, kernel=kernel, backend=backend)
            refreshed.refresh_values(replacement)
            fresh = IsingSampler(replacement, classes=refreshed.classes,
                                 kernel=kernel, backend="numpy")
            np.testing.assert_array_equal(
                refreshed.anneal(temperatures, 6, random_state=19),
                fresh.anneal(temperatures, 6, random_state=19))

    def test_initial_spins_honoured(self, backend):
        ising = random_ising(8, 20)
        rng = np.random.default_rng(6)
        start = rng.choice(np.array([-1.0, 1.0]), size=(5, 8))
        temperatures = schedule(25)
        np.testing.assert_array_equal(
            IsingSampler(ising, kernel="dense", backend="numpy").anneal(
                temperatures, 5, random_state=21, initial_spins=start),
            IsingSampler(ising, kernel="dense", backend=backend).anneal(
                temperatures, 5, random_state=21, initial_spins=start))

    def test_machine_run_identical(self, backend):
        """Full QA job (embed, ICE, clusters, unembed) across backends."""
        ising = random_ising(5, 22)
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(3, 3))
        parameters = AnnealerParameters(num_anneals=12)
        runs = {
            name: machine.run(ising, parameters, random_state=23,
                              backend=name)
            for name in ("numpy", backend)
        }
        reference, compiled = runs["numpy"], runs[backend]
        np.testing.assert_array_equal(reference.solutions.samples,
                                      compiled.solutions.samples)
        np.testing.assert_array_equal(reference.solutions.num_occurrences,
                                      compiled.solutions.num_occurrences)
        np.testing.assert_array_equal(reference.solutions.energies,
                                      compiled.solutions.energies)

    def test_sa_solver_identical(self, backend, array_digest):
        ising = random_ising(14, 24)
        reference = SimulatedAnnealingSolver(num_sweeps=60, num_reads=30,
                                             backend="numpy")
        compiled = SimulatedAnnealingSolver(num_sweeps=60, num_reads=30,
                                            backend=backend)
        expected = reference.sample(ising, random_state=25)
        actual = compiled.sample(ising, random_state=25)
        assert array_digest(expected.samples) == array_digest(actual.samples)
        np.testing.assert_array_equal(expected.energies, actual.energies)


@pytest.mark.parametrize("backend", COMPILED)
class TestCompiledClusterKernels:
    """The fused cluster kernels: embedded problems compiled end to end."""

    @pytest.mark.parametrize("chain_length", [4, 16])
    @pytest.mark.parametrize("kernel", ["colour", "dense"])
    def test_embedded_problem_stream(self, backend, kernel, chain_length,
                                     array_digest):
        ising, clusters = path_chain_ising(48, chain_length, 40)
        temperatures = schedule(45)
        expected = IsingSampler(ising, clusters=clusters, kernel=kernel,
                                backend="numpy").anneal(
            temperatures, 9, random_state=41)
        actual = IsingSampler(ising, clusters=clusters, kernel=kernel,
                              backend=backend).anneal(
            temperatures, 9, random_state=41)
        np.testing.assert_array_equal(expected, actual)
        assert array_digest(expected) == array_digest(actual)

    @pytest.mark.parametrize("kernel", ["colour", "dense"])
    def test_multi_block_cluster_pack_dispatches_compiled(
            self, backend, kernel, monkeypatch):
        """PR 4's dispatch exception is gone: serving-shaped packs with
        chains run one pack-level fused compiled call per anneal."""
        base, clusters = path_chain_ising(20, 4, 42, density=0.15)
        rng = np.random.default_rng(43)
        problems = [
            IsingModel(num_variables=20, linear=rng.normal(size=20),
                       couplings={key: float(rng.normal())
                                  for key in base.couplings})
            for _ in range(3)
        ]
        entry = ("pack_fused_dense_cluster_sweep" if kernel == "dense"
                 else "pack_fused_colour_cluster_sweep")
        calls = []
        original = getattr(backends, entry)

        def counting(used_backend, *args, **kwargs):
            calls.append(used_backend)
            return original(used_backend, *args, **kwargs)

        monkeypatch.setattr(backends, entry, counting)
        temperatures = schedule(30)
        packed = BlockDiagonalSampler(problems, clusters=clusters,
                                      kernel=kernel, backend=backend)
        actual = packed.anneal(temperatures, 6,
                               [np.random.default_rng(50 + b)
                                for b in range(3)])
        assert calls == [backend], \
            "a multi-block cluster pack must be one compiled pack dispatch"
        monkeypatch.undo()
        expected = BlockDiagonalSampler(problems, clusters=clusters,
                                        kernel=kernel,
                                        backend="numpy").anneal(
            temperatures, 6,
            [np.random.default_rng(50 + b) for b in range(3)])
        np.testing.assert_array_equal(expected, actual)

    def test_cluster_sweep_entry_point(self, backend):
        """The standalone cluster_sweep consumes the reference draw stream:
        a schedule of pure cluster sweeps equals the numpy cluster path of a
        colour-kernel sampler whose classes never move (no couplings beyond
        the chains, zero-field singleton classes would still flip; instead
        compare against engine-built descriptors via one-sweep equality)."""
        ising, clusters = path_chain_ising(24, 4, 44, density=0.1)
        sampler = IsingSampler(ising, clusters=clusters, backend="numpy")
        descriptors = sampler._cluster_descriptors()
        spins_ref = np.random.default_rng(44).choice(
            np.array([-1.0, 1.0]), size=(7, 24))
        spins_cmp = spins_ref.copy()
        rng_ref = np.random.default_rng(45)
        rng_cmp = np.random.default_rng(45)
        temperatures = schedule(12)
        for temperature in temperatures:
            sampler._cluster_sweep(spins_ref, temperature, [rng_ref])
        backends.cluster_sweep(backend, spins_cmp, sampler.linear,
                               descriptors[0], temperatures, rng_cmp)
        np.testing.assert_array_equal(spins_ref, spins_cmp)

    def test_machine_run_batch_pack_identical(self, backend):
        """Serving-shaped multi-problem QA packs (embedded chains → cluster
        moves, multi-block) are bit-identical to numpy through the full
        machine model now that the pack dispatch exception is gone."""
        base = random_ising(5, 46)
        rng = np.random.default_rng(47)
        problems = [
            IsingModel(num_variables=5, linear=rng.normal(size=5),
                       couplings={key: float(rng.normal())
                                  for key in base.couplings})
            for _ in range(3)
        ]
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(3, 3))
        parameters = AnnealerParameters(num_anneals=10)
        reference = machine.run_batch(problems, parameters, random_state=48,
                                      backend="numpy")
        compiled = machine.run_batch(problems, parameters, random_state=48,
                                     backend=backend)
        for expected, actual in zip(reference, compiled):
            np.testing.assert_array_equal(expected.solutions.samples,
                                          actual.solutions.samples)
            np.testing.assert_array_equal(expected.solutions.num_occurrences,
                                          actual.solutions.num_occurrences)
            np.testing.assert_array_equal(expected.solutions.energies,
                                          actual.solutions.energies)


class TestCextCompileCache:
    """Satellite: the on-disk compile cache survives concurrent compiles."""

    def test_two_processes_cold_cache(self, tmp_path):
        """Two fresh processes warming cext on one cold cache — the race the
        process-pool serving workers hit — must both succeed and leave one
        (complete) artifact."""
        if not backends.cext_available():
            pytest.skip("no C compiler in this environment")
        repo_src = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(backends.__file__))))
        env = dict(os.environ,
                   XDG_CACHE_HOME=str(tmp_path),
                   PYTHONPATH=repo_src + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))
        script = (
            "from repro.annealer import backends\n"
            "assert backends.cext_available()\n"
            "backends.warmup('cext')\n"
        )
        processes = [
            subprocess.Popen([sys.executable, "-c", script], env=env)
            for _ in range(2)
        ]
        exit_codes = [process.wait(timeout=300) for process in processes]
        assert exit_codes == [0, 0]
        artifacts = list((tmp_path / "repro_backends").glob("metropolis_*.so"))
        assert len(artifacts) == 1

    def test_compile_failure_tolerates_concurrent_winner(self, monkeypatch,
                                                         tmp_path):
        """When this process's compile fails but another process published
        the artifact mid-flight, the published artifact is used."""
        digest = hashlib.sha256(
            backends._C_SOURCE.encode()).hexdigest()[:16]
        cache = tmp_path / "cache"
        target = cache / f"metropolis_{digest}.so"
        monkeypatch.setattr(backends, "_cache_dir", lambda: cache)

        def racing_compiler(*args, **kwargs):
            # Simulate the concurrent winner: the target appears while this
            # process's own compiler invocation fails.
            cache.mkdir(parents=True, exist_ok=True)
            target.write_bytes(b"concurrent winner")
            raise subprocess.SubprocessError("simulated compiler failure")

        monkeypatch.setattr(backends.subprocess, "run", racing_compiler)
        assert backends._compile_cext() == target
        assert target.read_bytes() == b"concurrent winner"

    def test_compile_failure_without_winner_returns_none(self, monkeypatch,
                                                         tmp_path):
        cache = tmp_path / "cache"
        monkeypatch.setattr(backends, "_cache_dir", lambda: cache)
        monkeypatch.setattr(backends, "_COMPILERS", ())
        assert backends._compile_cext() is None


class TestIncrementalClusterFields:
    """Satellite: cluster flips update dense fields in place, same stream."""

    @pytest.mark.parametrize("blocks", [1, 3])
    def test_incremental_matches_recompute(self, blocks):
        rng = np.random.default_rng(30)
        base = random_ising(11, 31)
        problems = [
            IsingModel(num_variables=11, linear=rng.normal(size=11),
                       couplings={key: float(rng.normal())
                                  for key in base.couplings})
            for _ in range(blocks)
        ]
        clusters = [np.array([0, 1, 2], dtype=np.intp),
                    np.array([5, 6], dtype=np.intp),
                    np.array([8, 9, 10], dtype=np.intp)]
        temperatures = schedule(50)
        rngs_a = [np.random.default_rng(70 + b) for b in range(blocks)]
        rngs_b = [np.random.default_rng(70 + b) for b in range(blocks)]
        incremental = BlockDiagonalSampler(problems, clusters=clusters,
                                           kernel="dense", backend="numpy")
        assert incremental.incremental_cluster_fields
        recompute = BlockDiagonalSampler(problems, clusters=clusters,
                                         kernel="dense", backend="numpy")
        recompute.incremental_cluster_fields = False
        np.testing.assert_array_equal(
            incremental.anneal(temperatures, 9, rngs_a),
            recompute.anneal(temperatures, 9, rngs_b))
