"""Tests for repro.channel.models."""

import numpy as np
import pytest

from repro.channel.models import (
    FixedChannel,
    RandomPhaseChannel,
    RayleighChannel,
    RicianChannel,
    condition_number,
)
from repro.exceptions import ChannelError, ConfigurationError


class TestRayleighChannel:
    def test_shape_and_dtype(self):
        channel = RayleighChannel().sample(4, 3, random_state=0)
        assert channel.shape == (4, 3)
        assert np.iscomplexobj(channel)

    def test_average_gain_statistics(self):
        channel = RayleighChannel(average_gain=2.0).sample(200, 200, random_state=1)
        assert np.mean(np.abs(channel) ** 2) == pytest.approx(2.0, rel=0.05)

    def test_deterministic_with_seed(self):
        a = RayleighChannel().sample(3, 3, random_state=5)
        b = RayleighChannel().sample(3, 3, random_state=5)
        np.testing.assert_array_equal(a, b)

    def test_invalid_gain(self):
        with pytest.raises(ConfigurationError):
            RayleighChannel(average_gain=0.0)

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            RayleighChannel().sample(0, 3)

    def test_sample_many(self):
        stack = RayleighChannel().sample_many(5, 2, 2, random_state=0)
        assert stack.shape == (5, 2, 2)
        assert not np.array_equal(stack[0], stack[1])


class TestRandomPhaseChannel:
    def test_unit_magnitude(self):
        channel = RandomPhaseChannel().sample(6, 6, random_state=0)
        np.testing.assert_allclose(np.abs(channel), 1.0)

    def test_gain_scaling(self):
        channel = RandomPhaseChannel(gain=4.0).sample(3, 3, random_state=0)
        np.testing.assert_allclose(np.abs(channel), 2.0)

    def test_phases_vary(self):
        channel = RandomPhaseChannel().sample(8, 8, random_state=0)
        assert np.std(np.angle(channel)) > 0.5


class TestRicianChannel:
    def test_shape(self):
        assert RicianChannel().sample(4, 2, random_state=0).shape == (4, 2)

    def test_high_k_is_nearly_constant_magnitude(self):
        channel = RicianChannel(k_factor=1000.0).sample(50, 4, random_state=0)
        assert np.std(np.abs(channel)) < 0.1

    def test_zero_k_is_rayleigh_like(self):
        channel = RicianChannel(k_factor=0.0, average_gain=1.0).sample(
            400, 400, random_state=1)
        assert np.mean(np.abs(channel) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_negative_k_rejected(self):
        with pytest.raises(ChannelError):
            RicianChannel(k_factor=-1.0)


class TestFixedChannel:
    def test_returns_copy_of_matrix(self):
        matrix = np.array([[1 + 1j, 2], [3, 4]])
        model = FixedChannel(matrix)
        out = model.sample(2, 2)
        np.testing.assert_array_equal(out, matrix)
        out[0, 0] = 0
        np.testing.assert_array_equal(model.sample(2, 2), matrix)

    def test_shape_mismatch_rejected(self):
        model = FixedChannel(np.eye(2))
        with pytest.raises(ChannelError):
            model.sample(3, 2)


class TestConditionNumber:
    def test_identity_is_one(self):
        assert condition_number(np.eye(4)) == pytest.approx(1.0)

    def test_singular_is_infinite(self):
        assert condition_number(np.ones((3, 3))) == np.inf

    def test_square_iid_worse_than_tall(self):
        # The motivation for ML detection: square channels are worse
        # conditioned than tall ones on average.
        rng = np.random.default_rng(0)
        square = np.mean([
            condition_number(RayleighChannel().sample(8, 8, rng))
            for _ in range(20)
        ])
        tall = np.mean([
            condition_number(RayleighChannel().sample(32, 8, rng))
            for _ in range(20)
        ])
        assert square > tall
