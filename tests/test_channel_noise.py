"""Tests for repro.channel.noise."""

import numpy as np
import pytest

from repro.channel.noise import (
    awgn,
    measure_snr_db,
    noise_variance_for_snr,
    received_signal_power,
    snr_db_to_linear,
    snr_linear_to_db,
)
from repro.exceptions import ChannelError


class TestSnrConversion:
    def test_zero_db_is_unity(self):
        assert snr_db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert snr_db_to_linear(10.0) == pytest.approx(10.0)

    def test_roundtrip(self):
        for value in (0.5, 1.0, 7.7, 123.4):
            assert snr_db_to_linear(snr_linear_to_db(value)) == pytest.approx(value)

    def test_negative_linear_rejected(self):
        with pytest.raises(ChannelError):
            snr_linear_to_db(-1.0)


class TestReceivedSignalPower:
    def test_identity_channel(self):
        channel = np.eye(3, dtype=complex)
        assert received_signal_power(channel, symbol_energy=2.0) == pytest.approx(2.0)

    def test_scales_with_symbol_energy(self):
        channel = np.ones((2, 2), dtype=complex)
        low = received_signal_power(channel, 1.0)
        high = received_signal_power(channel, 4.0)
        assert high == pytest.approx(4.0 * low)

    def test_vector_rejected(self):
        with pytest.raises(ChannelError):
            received_signal_power(np.ones(3, dtype=complex), 1.0)


class TestNoiseVarianceForSnr:
    def test_higher_snr_means_less_noise(self):
        channel = np.eye(4, dtype=complex)
        low = noise_variance_for_snr(channel, 1.0, snr_db=10.0)
        high = noise_variance_for_snr(channel, 1.0, snr_db=30.0)
        assert high < low

    def test_consistency_with_measure(self):
        rng = np.random.default_rng(0)
        channel = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        variance = noise_variance_for_snr(channel, 2.0, snr_db=17.0)
        assert measure_snr_db(channel, 2.0, variance) == pytest.approx(17.0)

    def test_measure_snr_infinite_for_zero_noise(self):
        assert measure_snr_db(np.eye(2, dtype=complex), 1.0, 0.0) is None


class TestAwgn:
    def test_shape(self):
        noise = awgn((5, 3), 1.0, random_state=0)
        assert noise.shape == (5, 3)
        assert np.iscomplexobj(noise)

    def test_variance_statistics(self):
        noise = awgn(200_000, 4.0, random_state=1)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(4.0, rel=0.02)

    def test_zero_variance_is_silent(self):
        noise = awgn(10, 0.0, random_state=2)
        np.testing.assert_array_equal(noise, np.zeros(10))

    def test_negative_variance_rejected(self):
        with pytest.raises(ChannelError):
            awgn(3, -1.0)

    def test_deterministic_with_seed(self):
        np.testing.assert_array_equal(awgn(4, 1.0, random_state=3),
                                      awgn(4, 1.0, random_state=3))
