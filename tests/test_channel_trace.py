"""Tests for repro.channel.trace."""

import numpy as np
import pytest

from repro.channel.models import RayleighChannel, condition_number
from repro.channel.trace import ArgosLikeTraceGenerator, ChannelTrace, TraceChannel
from repro.exceptions import ChannelError


@pytest.fixture(scope="module")
def small_trace():
    generator = ArgosLikeTraceGenerator(num_bs_antennas=16, num_users=4,
                                        num_subcarriers=8)
    return generator.generate(num_frames=3, random_state=0)


class TestChannelTrace:
    def test_dimensions(self, small_trace):
        assert small_trace.num_frames == 3
        assert small_trace.num_subcarriers == 8
        assert small_trace.num_bs_antennas == 16
        assert small_trace.num_users == 4

    def test_channel_use_full(self, small_trace):
        matrix = small_trace.channel_use(0, 0)
        assert matrix.shape == (16, 4)

    def test_channel_use_subset(self, small_trace):
        matrix = small_trace.channel_use(1, 2, antenna_subset=[0, 5, 9, 15])
        assert matrix.shape == (4, 4)
        np.testing.assert_array_equal(matrix[1], small_trace.channels[1, 2, 5])

    def test_invalid_frame_rejected(self, small_trace):
        with pytest.raises(Exception):
            small_trace.channel_use(99, 0)

    def test_invalid_subset_rejected(self, small_trace):
        with pytest.raises(ChannelError):
            small_trace.channel_use(0, 0, antenna_subset=[99])
        with pytest.raises(ChannelError):
            small_trace.channel_use(0, 0, antenna_subset=[])

    def test_random_square_channel(self, small_trace):
        matrix = small_trace.random_square_channel(random_state=1)
        assert matrix.shape == (4, 4)

    def test_random_square_channel_deterministic(self, small_trace):
        a = small_trace.random_square_channel(random_state=2)
        b = small_trace.random_square_channel(random_state=2)
        np.testing.assert_array_equal(a, b)

    def test_save_load_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "trace.npz"
        small_trace.save(path)
        loaded = ChannelTrace.load(path)
        np.testing.assert_array_equal(loaded.channels, small_trace.channels)
        assert loaded.carrier_frequency_hz == small_trace.carrier_frequency_hz

    def test_save_load_preserves_dtype_shape_and_metadata(self, tmp_path):
        trace = ChannelTrace(
            channels=np.arange(24, dtype=np.float32).reshape(1, 2, 3, 4),
            carrier_frequency_hz=5.8e9, frame_interval_s=2e-3)
        path = tmp_path / "meta.npz"
        trace.save(path)
        loaded = ChannelTrace.load(path)
        # The constructor normalises to complex128; the reloaded trace must
        # land on the same canonical dtype and the exact geometry.
        assert loaded.channels.dtype == np.complex128
        assert loaded.channels.shape == (1, 2, 3, 4)
        assert loaded.channels.shape == trace.channels.shape
        assert loaded.carrier_frequency_hz == 5.8e9
        assert loaded.frame_interval_s == 2e-3
        assert isinstance(loaded.carrier_frequency_hz, float)
        assert isinstance(loaded.frame_interval_s, float)

    def test_save_load_preserves_seeded_channel_use_draws(self, small_trace,
                                                          tmp_path):
        path = tmp_path / "draws.npz"
        small_trace.save(path)
        loaded = ChannelTrace.load(path)
        # Deterministic selections must survive the round trip exactly...
        np.testing.assert_array_equal(
            loaded.channel_use(1, 3, antenna_subset=[2, 7, 11, 14]),
            small_trace.channel_use(1, 3, antenna_subset=[2, 7, 11, 14]))
        # ...and so must seeded random draws (same shapes => same stream).
        np.testing.assert_array_equal(
            loaded.random_square_channel(random_state=123),
            small_trace.random_square_channel(random_state=123))

    def test_wrong_rank_rejected(self):
        with pytest.raises(ChannelError):
            ChannelTrace(channels=np.zeros((2, 3, 4)))


class TestArgosLikeTraceGenerator:
    def test_default_geometry_matches_paper(self):
        generator = ArgosLikeTraceGenerator()
        assert generator.num_bs_antennas == 96
        assert generator.num_users == 8

    def test_deterministic(self):
        generator = ArgosLikeTraceGenerator(num_bs_antennas=8, num_users=2,
                                            num_subcarriers=4)
        a = generator.generate(num_frames=2, random_state=3).channels
        b = generator.generate(num_frames=2, random_state=3).channels
        np.testing.assert_array_equal(a, b)

    def test_temporal_correlation(self):
        generator = ArgosLikeTraceGenerator(num_bs_antennas=16, num_users=4,
                                            num_subcarriers=4,
                                            temporal_correlation=0.99)
        trace = generator.generate(num_frames=5, random_state=0)
        first, last = trace.channels[0], trace.channels[-1]
        correlation = np.abs(np.vdot(first, last)) / (
            np.linalg.norm(first) * np.linalg.norm(last))
        assert correlation > 0.8

    def test_frequency_selectivity(self):
        generator = ArgosLikeTraceGenerator(num_bs_antennas=16, num_users=4,
                                            num_subcarriers=16, num_taps=4)
        trace = generator.generate(num_frames=1, random_state=0)
        sc0 = trace.channels[0, 0]
        sc8 = trace.channels[0, 8]
        assert not np.allclose(sc0, sc8)

    def test_user_gain_spread(self):
        generator = ArgosLikeTraceGenerator(num_bs_antennas=32, num_users=8,
                                            num_subcarriers=4,
                                            gain_spread_db=12.0)
        trace = generator.generate(num_frames=1, random_state=1)
        per_user_power = np.mean(np.abs(trace.channels[0]) ** 2, axis=(0, 1))
        assert per_user_power.max() / per_user_power.min() > 1.5

    def test_invalid_temporal_correlation(self):
        with pytest.raises(ChannelError):
            ArgosLikeTraceGenerator(temporal_correlation=1.5)

    def test_trace_channels_worse_conditioned_than_rayleigh(self):
        # The reason the paper evaluates on real traces: correlated channels
        # are harder than i.i.d. Rayleigh.
        generator = ArgosLikeTraceGenerator(num_bs_antennas=32, num_users=4,
                                            num_subcarriers=8, rician_k=8.0)
        trace = generator.generate(num_frames=2, random_state=0)
        rng = np.random.default_rng(0)
        trace_cond = np.median([
            condition_number(trace.random_square_channel(rng))
            for _ in range(20)
        ])
        rayleigh_cond = np.median([
            condition_number(RayleighChannel().sample(4, 4, rng))
            for _ in range(20)
        ])
        assert trace_cond > rayleigh_cond * 0.8


class TestTraceChannel:
    def test_sample_shape(self, small_trace):
        model = TraceChannel(small_trace)
        assert model.sample(4, 4, random_state=0).shape == (4, 4)

    def test_wrong_user_count_rejected(self, small_trace):
        with pytest.raises(ChannelError):
            TraceChannel(small_trace).sample(4, 5)

    def test_too_many_antennas_rejected(self, small_trace):
        with pytest.raises(ChannelError):
            TraceChannel(small_trace).sample(99, 4)

    def test_requires_trace_instance(self):
        with pytest.raises(ChannelError):
            TraceChannel(np.zeros((2, 2)))
