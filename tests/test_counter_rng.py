"""The counter-RNG contract: keyed Philox streams for replica parallelism.

``rng="counter"`` trades the engine's sequential draw discipline (one
generator per block, draws consumed in sweep order — inherently serial) for
keyed Philox4x32-10 streams addressed by ``(site, sweep, replica, tag)``
under a per-block 64-bit key.  Every uniform is a pure function of its
coordinates, so evaluation order is free — which is exactly what makes
intra-pack threading legal.  These tests pin the contract:

* the Philox primitive itself (determinism, range, coordinate/key
  sensitivity, vectorised == scalar);
* seeded-substream disjointness across blocks and replicas;
* bit-identical streams across backends (numpy reference vs compiled);
* bit-identical streams across thread counts (t=1 ≡ t=4);
* bit-identical decodes across worker-pool modes (inline/thread/process);
* the guard rails: sequential mode is untouched by any of this, threads > 1
  without counter mode is rejected at every layer, and mixed-mode packs are
  rejected by the scheduler.
"""

import numpy as np
import pytest

from repro.annealer import counter
from repro.annealer.backends import available_backends, cext_available
from repro.annealer.chimera import ChimeraGraph
from repro.annealer.engine import IsingSampler
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.cran.jobs import DecodeJob
from repro.cran.scheduler import EDFBatchScheduler
from repro.cran.service import CranService
from repro.cran.workers import WorkerPool, _batch_decode_hints
from repro.decoder.quamax import QuAMaxDecoder
from repro.exceptions import AnnealerError, DetectionError, SchedulingError
from repro.ising.model import IsingModel
from repro.ising.solver import (
    SimulatedAnnealingSolver,
    geometric_temperature_schedule,
)
from repro.mimo.system import MimoUplink

SEED = 2019

COMPILED = [backend for backend in available_backends()
            if backend != "numpy"]


def dense_problem(n=16, seed=SEED):
    rng = np.random.default_rng(seed)
    return IsingModel(
        num_variables=n,
        linear=rng.normal(size=n),
        couplings={(i, j): float(rng.normal())
                   for i in range(n) for j in range(i + 1, n)})


def embedded_problem():
    from cluster_workloads import build_path_chain_problem
    return build_path_chain_problem(128, 16, SEED, density=0.05)


# --------------------------------------------------------------------------- #
# The Philox primitive
# --------------------------------------------------------------------------- #
class TestPhiloxPrimitive:
    def test_deterministic_and_in_unit_interval(self):
        sites = np.arange(4096, dtype=np.uint32)
        u1 = counter.philox_uniform(sites, 3, 7, counter.TAG_SWEEP,
                                    0xDEADBEEFCAFEF00D)
        u2 = counter.philox_uniform(sites, 3, 7, counter.TAG_SWEEP,
                                    0xDEADBEEFCAFEF00D)
        assert np.array_equal(u1, u2)
        assert u1.dtype == np.float64
        assert np.all(u1 >= 0.0) and np.all(u1 < 1.0)
        # The stream is not degenerate: essentially uniform over [0, 1).
        assert 0.45 < u1.mean() < 0.55

    def test_vectorised_matches_scalar(self):
        key = 0x0123456789ABCDEF
        sites = np.arange(33, dtype=np.uint32)
        vector = counter.philox_uniform(sites, 5, 2, counter.TAG_CLUSTER, key)
        scalar = np.array([
            float(counter.philox_uniform(
                np.array([site], dtype=np.uint32), 5, 2,
                counter.TAG_CLUSTER, key)[0])
            for site in sites])
        assert np.array_equal(vector, scalar)

    @pytest.mark.parametrize("axis", ["site", "sweep", "replica", "tag",
                                      "key"])
    def test_every_coordinate_separates_streams(self, axis):
        base = dict(site=np.arange(256, dtype=np.uint32), sweep=1, replica=1,
                    tag=counter.TAG_SWEEP, key=0x1111222233334444)
        moved = dict(base)
        if axis == "site":
            moved["site"] = base["site"] + np.uint32(256)
        elif axis == "sweep":
            moved["sweep"] = 2
        elif axis == "replica":
            moved["replica"] = 2
        elif axis == "tag":
            moved["tag"] = counter.TAG_INIT
        else:
            moved["key"] = 0x1111222233334445
        u_base = counter.philox_uniform(base["site"], base["sweep"],
                                        base["replica"], base["tag"],
                                        base["key"])
        u_moved = counter.philox_uniform(moved["site"], moved["sweep"],
                                         moved["replica"], moved["tag"],
                                         moved["key"])
        # Avalanche: a one-step move in any coordinate decorrelates the
        # whole vector, not just one entry.
        assert not np.any(u_base == u_moved)

    def test_block_keys_distinct_and_reproducible(self):
        keys_a = [counter.block_key(np.random.default_rng(SEED))
                  for _ in range(1)]
        parent = np.random.default_rng(SEED)
        keys = [counter.block_key(parent) for _ in range(64)]
        assert len(set(keys)) == 64
        assert keys[0] == keys_a[0]  # same seeding discipline, same keys

    def test_initial_spins_keyed_and_pm_one(self):
        spins = counter.counter_initial_spins(0xABCD, 8, 32)
        assert spins.shape == (8, 32)
        assert set(np.unique(spins)) <= {-1.0, 1.0}
        assert np.array_equal(spins,
                              counter.counter_initial_spins(0xABCD, 8, 32))
        other = counter.counter_initial_spins(0xABCE, 8, 32)
        assert not np.array_equal(spins, other)
        # Replicas draw disjoint substreams of the same key.
        assert not np.array_equal(spins[0], spins[1])


# --------------------------------------------------------------------------- #
# Backend and thread-count equivalence
# --------------------------------------------------------------------------- #
class TestCounterEquivalence:
    @pytest.fixture(scope="class")
    def schedule(self):
        return geometric_temperature_schedule(60, 5.0, 0.05)

    def reference_dense(self, schedule):
        sampler = IsingSampler(dense_problem(), backend="numpy",
                               rng="counter")
        return sampler.anneal(schedule, 12, random_state=SEED)

    @pytest.mark.parametrize("backend", COMPILED)
    def test_dense_backend_equivalence(self, backend, schedule):
        reference = self.reference_dense(schedule)
        sampler = IsingSampler(dense_problem(), backend=backend,
                               rng="counter")
        assert np.array_equal(sampler.anneal(schedule, 12, random_state=SEED),
                              reference)

    @pytest.mark.parametrize("backend", COMPILED)
    def test_dense_thread_independence(self, backend, schedule):
        reference = self.reference_dense(schedule)
        for threads in (1, 4):
            sampler = IsingSampler(dense_problem(), backend=backend,
                                   rng="counter", threads=threads)
            assert np.array_equal(
                sampler.anneal(schedule, 12, random_state=SEED), reference)

    @pytest.mark.parametrize("backend", COMPILED)
    def test_embedded_cluster_equivalence_and_threads(self, backend,
                                                      schedule):
        ising, clusters = embedded_problem()
        reference = IsingSampler(ising, clusters=clusters, backend="numpy",
                                 rng="counter").anneal(schedule, 8,
                                                       random_state=SEED)
        for threads in (1, 4):
            sampler = IsingSampler(ising, clusters=clusters, backend=backend,
                                   rng="counter", threads=threads)
            assert np.array_equal(
                sampler.anneal(schedule, 8, random_state=SEED), reference)

    @pytest.mark.parametrize("backend", COMPILED)
    def test_colour_kernel_equivalence(self, backend, schedule):
        # A sparse problem dispatches the colour kernel; counter colour
        # streams must agree with the numpy reference across backends and
        # thread counts.
        ising, _clusters = embedded_problem()
        reference = IsingSampler(ising, kernel="colour", backend="numpy",
                                 rng="counter").anneal(schedule, 8,
                                                       random_state=SEED)
        for threads in (1, 4):
            sampler = IsingSampler(ising, kernel="colour", backend=backend,
                                   rng="counter", threads=threads)
            assert np.array_equal(
                sampler.anneal(schedule, 8, random_state=SEED), reference)

    def test_solver_counter_mode_backend_identical(self):
        results = []
        for backend in available_backends():
            solver = SimulatedAnnealingSolver(num_sweeps=50, num_reads=20,
                                              backend=backend, rng="counter",
                                              threads=2 if backend != "numpy"
                                              else 1)
            results.append(solver.sample(dense_problem(), random_state=SEED))
        first = results[0]
        for other in results[1:]:
            assert np.array_equal(first.samples, other.samples)
            assert np.array_equal(first.energies, other.energies)

    def test_counter_differs_from_sequential_but_both_valid(self, schedule):
        # Counter mode is a *different* exact stream, not a re-expression of
        # the sequential one.
        ising = dense_problem()
        seq = IsingSampler(ising, backend="numpy").anneal(
            schedule, 12, random_state=SEED)
        ctr = IsingSampler(ising, backend="numpy", rng="counter").anneal(
            schedule, 12, random_state=SEED)
        assert seq.shape == ctr.shape
        assert not np.array_equal(seq, ctr)

    def test_sequential_streams_unchanged_by_default(self, schedule):
        # The default-constructed sampler and an explicit rng="sequential"
        # one must consume the exact same streams.
        ising = dense_problem()
        default = IsingSampler(ising, backend="numpy").anneal(
            schedule, 12, random_state=SEED)
        explicit = IsingSampler(ising, backend="numpy",
                                rng="sequential").anneal(
            schedule, 12, random_state=SEED)
        assert np.array_equal(default, explicit)


# --------------------------------------------------------------------------- #
# Substream disjointness across blocks and replicas
# --------------------------------------------------------------------------- #
class TestSubstreamDisjointness:
    def test_pack_blocks_decode_like_singleton_runs(self):
        # Pack-level evaluation-order independence: annealing B blocks as
        # one counter-mode pack must reproduce each block annealed alone
        # with its own stream — the property the sequential discipline
        # also guarantees, preserved under the counter contract.
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4))
        params = AnnealerParameters(num_anneals=10)
        problems = [dense_problem(seed=SEED + i) for i in range(3)]
        packed = machine.run_batch(
            problems, params, random_states=[SEED + 100 + i
                                             for i in range(3)],
            rng="counter")
        for i, problem in enumerate(problems):
            alone = machine.run(problem, params, random_state=SEED + 100 + i,
                                rng="counter")
            assert np.array_equal(packed[i].solutions.samples,
                                  alone.solutions.samples)
            assert np.array_equal(packed[i].solutions.energies,
                                  alone.solutions.energies)

    def test_replica_streams_are_disjoint(self):
        # No two replicas of a counter anneal may share a trajectory (the
        # birthday bound at 2^64 keys makes collisions impossible unless
        # the replica coordinate were ignored).
        sampler = IsingSampler(dense_problem(), backend="numpy",
                               rng="counter")
        spins = sampler.anneal(geometric_temperature_schedule(40, 5.0, 0.5),
                               16, random_state=SEED)
        unique = {spin_row.tobytes() for spin_row in np.asarray(spins)}
        assert len(unique) > 1


# --------------------------------------------------------------------------- #
# Guard rails
# --------------------------------------------------------------------------- #
class TestGuards:
    def test_engine_rejects_threads_without_counter(self):
        with pytest.raises(AnnealerError, match="rng='counter'"):
            IsingSampler(dense_problem(), threads=2)

    def test_engine_rejects_unknown_rng(self):
        with pytest.raises(AnnealerError, match="rng"):
            IsingSampler(dense_problem(), rng="philox")

    def test_machine_rejects_unknown_rng(self):
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4))
        with pytest.raises(AnnealerError, match="rng"):
            machine.run(dense_problem(), AnnealerParameters(num_anneals=5),
                        random_state=SEED, rng="philox")

    def test_decoder_rejects_threads_without_counter(self):
        with pytest.raises(DetectionError, match="rng='counter'"):
            QuAMaxDecoder(threads=2)

    def test_job_rejects_threads_without_counter(self):
        link = MimoUplink(num_users=2, constellation="BPSK")
        use = link.transmit(random_state=np.random.default_rng(0))
        with pytest.raises(SchedulingError, match="counter"):
            DecodeJob(job_id=0, user_id=0, frame=0, subcarrier=0,
                      channel_use=use, arrival_time_us=0.0, threads=2)
        with pytest.raises(SchedulingError, match="rng_mode"):
            DecodeJob(job_id=0, user_id=0, frame=0, subcarrier=0,
                      channel_use=use, arrival_time_us=0.0,
                      rng_mode="philox")

    def test_scheduler_rejects_mixed_mode_packs(self):
        link = MimoUplink(num_users=2, constellation="BPSK")
        rng = np.random.default_rng(0)
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=np.inf)
        scheduler.submit(DecodeJob(
            job_id=0, user_id=0, frame=0, subcarrier=0,
            channel_use=link.transmit(random_state=rng),
            arrival_time_us=0.0, rng_mode="counter"))
        with pytest.raises(SchedulingError, match="rng-homogeneous"):
            scheduler.submit(DecodeJob(
                job_id=1, user_id=0, frame=0, subcarrier=1,
                channel_use=link.transmit(random_state=rng),
                arrival_time_us=1.0, rng_mode="sequential"))
        # The rejected submit left the scheduler untouched.
        assert scheduler.queue_depth == 1
        assert scheduler.jobs_submitted == 1

    def test_batch_hints_clamp_sequential_to_serial(self):
        link = MimoUplink(num_users=2, constellation="BPSK")
        rng = np.random.default_rng(0)
        scheduler = EDFBatchScheduler(max_batch=2, max_wait_us=np.inf)
        batches = []
        for i in range(2):
            batches += scheduler.submit(DecodeJob(
                job_id=i, user_id=0, frame=0, subcarrier=i,
                channel_use=link.transmit(random_state=rng),
                arrival_time_us=float(i)))
        assert _batch_decode_hints(batches[0], default_threads=8) == \
            ("sequential", 1)

    def test_pool_derives_process_thread_budget(self):
        import os
        decoder = QuAMaxDecoder()
        pool = WorkerPool(decoder, num_workers=2, mode="process",
                          autostart=False)
        expected = max(1, (os.cpu_count() or 1) // 2)
        assert pool.worker_info()["threads"] == expected
        override = WorkerPool(decoder, num_workers=2, mode="process",
                              threads=3, autostart=False)
        assert override.worker_info()["threads"] == 3
        inline = WorkerPool(decoder)
        assert inline.worker_info()["threads"] == 1


# --------------------------------------------------------------------------- #
# Serving-layer identity across pool modes
# --------------------------------------------------------------------------- #
class TestServingIdentity:
    @pytest.fixture(scope="class")
    def jobs(self):
        link = MimoUplink(num_users=2, constellation="BPSK")
        rng = np.random.default_rng(0)
        return [
            DecodeJob(job_id=i, user_id=0, frame=0, subcarrier=i,
                      channel_use=link.transmit(random_state=rng),
                      arrival_time_us=10.0 * i, deadline_us=10.0 * i + 1e6,
                      seed=100 + i, rng_mode="counter", threads=2)
            for i in range(6)
        ]

    @staticmethod
    def service():
        decoder = QuAMaxDecoder(
            QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
            AnnealerParameters(num_anneals=10), rng="counter")
        return CranService(decoder, max_batch=4)

    @staticmethod
    def payload(report):
        return [(r.job.job_id, r.result.detection.bits.tobytes(),
                 r.result.run.solutions.energies.tobytes())
                for r in report.results]

    def test_inline_thread_pool_identity(self, jobs):
        inline = self.service().run(jobs)
        decoder = QuAMaxDecoder(
            QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
            AnnealerParameters(num_anneals=10), rng="counter")
        threaded = CranService(decoder, max_batch=4, num_workers=2,
                               mode="thread").run(jobs)
        assert self.payload(inline) == self.payload(threaded)
        assert inline.telemetry["workers"]["threads"] == 1

    @pytest.mark.skipif(not cext_available(),
                        reason="process identity exercised with the cext")
    def test_process_pool_identity(self, jobs):
        inline = self.service().run(jobs)
        decoder = QuAMaxDecoder(
            QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
            AnnealerParameters(num_anneals=10), backend="cext",
            rng="counter")
        process = CranService(decoder, max_batch=4, num_workers=2,
                              mode="process", threads=2).run(jobs)
        assert self.payload(inline) == self.payload(process)
        assert process.telemetry["workers"]["threads"] == 2
