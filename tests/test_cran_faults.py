"""Chaos suite: deterministic fault injection, supervision, retry, brownout.

The invariants under test are the serving stack's fault-tolerance contract:

* **No job is ever lost.**  Under any seeded :class:`FaultPlan`, every
  submitted job terminates exactly once — either a ``job.complete`` or a
  ``job.shed`` trace event — and ``completed + shed == submitted``.
* **Retries are bit-deterministic.**  A retried decode re-uses the job's
  private seed, so completed detections are bit-identical to a fault-free
  run of the same load.
* **Modes are equivalent.**  Thread and process pools under the same plan
  and worker count produce identical virtual-time stamps, sheds and bits.
* **Fault-free runs are untouched.**  A plan with all-zero rates (or no
  plan at all) changes nothing: same trace, same telemetry shape.
"""

import pickle
from collections import Counter

import numpy as np
import pytest

from repro.annealer.chimera import ChimeraGraph
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.channel.trace import ArgosLikeTraceGenerator
from repro.cran import (
    BrownoutConfig,
    BrownoutController,
    CranService,
    DecodeJob,
    FaultPlan,
    PackFault,
    WorkerPool,
)
from repro.cran.faults import FAULT_CRASH, FAULT_DECODE_ERROR, FAULT_SLOW
from repro.cran.scheduler import DecodeBatch
from repro.cran.traffic import PoissonTrafficGenerator
from repro.cran.tracing import (
    EVENT_BROWNOUT_CLOSE,
    EVENT_BROWNOUT_OPEN,
    EVENT_JOB_COMPLETE,
    EVENT_JOB_RETRY,
    EVENT_JOB_SHED,
    EVENT_PACK_FAILED,
    EVENT_WORKER_RESTART,
)
from repro.decoder.quamax import QuAMaxDecoder
from repro.exceptions import SchedulingError, WorkerPoolError
from repro.mimo.system import MimoUplink


def make_decoder():
    return QuAMaxDecoder(QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
                         AnnealerParameters(num_anneals=8))


@pytest.fixture(scope="module")
def jobs():
    trace = ArgosLikeTraceGenerator(
        num_bs_antennas=8, num_users=2,
        num_subcarriers=8).generate(num_frames=1, random_state=0)
    generator = PoissonTrafficGenerator(
        trace, modulations="QPSK", mean_interarrival_us=10.0,
        burst_subcarriers=4, user_snrs_db=20.0, deadline_us=120_000.0)
    return generator.generate(5, random_state=0)


@pytest.fixture(scope="module")
def clean_report(jobs):
    return CranService(make_decoder(), max_batch=4, max_wait_us=50_000.0,
                       tracing=True).run(jobs)


def run_faulty(jobs, plan, *, mode="thread", num_workers=0, max_retries=3,
               restart_budget=16, **kwargs):
    service = CranService(make_decoder(), max_batch=4, max_wait_us=50_000.0,
                          tracing=True, mode=mode, num_workers=num_workers,
                          fault_plan=plan, max_retries=max_retries,
                          restart_budget=restart_budget, **kwargs)
    return service.run(jobs)


def terminal_counts(report):
    """job_id -> number of terminal (complete/shed) trace events."""
    counts = Counter()
    for event in report.trace:
        if event.name == EVENT_JOB_COMPLETE or event.name == EVENT_JOB_SHED:
            counts[event.job_id] += 1
    return counts


def detection_bits(report):
    return {r.job.job_id: r.result.detection.bits.tobytes()
            for r in report.results}


def stamps(report):
    return sorted((r.job.job_id, r.flush_time_us, r.start_time_us,
                   r.finish_time_us, r.result.detection.bits.tobytes())
                  for r in report.results)


# --------------------------------------------------------------------------- #
# FaultPlan: pure-function decisions
# --------------------------------------------------------------------------- #

class TestFaultPlan:
    def test_decisions_are_pure_functions_of_seed_and_entity(self):
        plan = FaultPlan(seed=7, crash_rate=0.1, decode_error_rate=0.1,
                         slow_rate=0.1, gateway_error_rate=0.2)
        clone = FaultPlan(seed=7, crash_rate=0.1, decode_error_rate=0.1,
                          slow_rate=0.1, gateway_error_rate=0.2)
        # Query order must not matter: decisions are keyed by entity alone.
        forward = [plan.pack_fault(i) for i in range(64)]
        backward = [clone.pack_fault(i) for i in reversed(range(64))]
        assert forward == backward[::-1]
        assert ([plan.gateway_fault(i) for i in range(64)]
                == [clone.gateway_fault(i) for i in range(64)])
        # A different seed is a different plan.
        other = FaultPlan(seed=8, crash_rate=0.1, decode_error_rate=0.1,
                          slow_rate=0.1)
        assert forward != [other.pack_fault(i) for i in range(64)]

    def test_fault_mix_tracks_rates(self):
        plan = FaultPlan(seed=1, crash_rate=0.1, decode_error_rate=0.1,
                         slow_rate=0.1, slow_factor=3.0)
        mix = Counter(fault.kind for fault in
                      (plan.pack_fault(i) for i in range(400))
                      if fault is not None)
        for kind in (FAULT_CRASH, FAULT_DECODE_ERROR, FAULT_SLOW):
            # Each kind should land within a loose band of its 10% rate.
            assert 15 <= mix[kind] <= 70
        slow = next(plan.pack_fault(i) for i in range(400)
                    if (f := plan.pack_fault(i)) and f.kind == FAULT_SLOW)
        assert slow == PackFault(FAULT_SLOW, factor=3.0)

    def test_zero_rate_plan_is_inert(self):
        plan = FaultPlan(seed=3)
        assert all(plan.pack_fault(i) is None for i in range(32))
        assert not any(plan.gateway_fault(i) for i in range(32))

    def test_plan_pickles_to_an_equal_plan(self):
        plan = FaultPlan(seed=5, crash_rate=0.2, slow_rate=0.1,
                         slow_factor=2.5, gateway_error_rate=0.05)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert [clone.pack_fault(i) for i in range(32)] \
            == [plan.pack_fault(i) for i in range(32)]

    @pytest.mark.parametrize("kwargs", [
        {"crash_rate": -0.1},
        {"decode_error_rate": 1.5},
        {"gateway_error_rate": 2.0},
        {"crash_rate": 0.6, "decode_error_rate": 0.6},
        {"slow_rate": 0.1, "slow_factor": 0.5},
    ])
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(SchedulingError):
            FaultPlan(seed=0, **kwargs)


# --------------------------------------------------------------------------- #
# Brownout breaker
# --------------------------------------------------------------------------- #

class TestBrownoutController:
    def test_hysteresis_band(self):
        breaker = BrownoutController(BrownoutConfig(open_queue_depth=8,
                                                    close_queue_depth=2))
        assert breaker.update(0.0, queue_depth=7) is None
        assert breaker.update(1.0, queue_depth=8) == "open"
        assert breaker.active and breaker.openings == 1
        # Inside the band the breaker holds — no chattering.
        assert breaker.update(2.0, queue_depth=5) is None
        assert breaker.active
        assert breaker.update(3.0, queue_depth=2) == "close"
        assert not breaker.active
        # Re-opening increments the counter.
        assert breaker.update(4.0, queue_depth=9) == "open"
        assert breaker.openings == 2

    def test_shed_rate_trigger_needs_pending_backlog(self):
        config = BrownoutConfig(open_queue_depth=100, close_queue_depth=2,
                                open_shed_rate=0.5)
        breaker = BrownoutController(config)
        # High shed rate with a drained queue must not trip the breaker.
        assert breaker.update(0.0, queue_depth=1, shed_rate=0.9) is None
        assert breaker.update(1.0, queue_depth=3, shed_rate=0.9) == "open"

    def test_config_requires_hysteresis_gap(self):
        with pytest.raises(SchedulingError):
            BrownoutConfig(open_queue_depth=4, close_queue_depth=4)
        with pytest.raises(SchedulingError):
            BrownoutConfig(open_queue_depth=0)
        with pytest.raises(SchedulingError):
            BrownoutConfig(open_shed_rate=0.0)


# --------------------------------------------------------------------------- #
# Inline chaos: the deterministic reference mode
# --------------------------------------------------------------------------- #

class TestInlineChaos:
    PLAN = FaultPlan(seed=1, crash_rate=0.25, decode_error_rate=0.25)

    @pytest.fixture(scope="class")
    def faulty(self, jobs):
        return run_faulty(jobs, self.PLAN)

    def test_no_job_is_lost(self, jobs, faulty):
        assert faulty.jobs_completed + len(faulty.shed_jobs) == len(jobs)
        counts = terminal_counts(faulty)
        assert set(counts) == {job.job_id for job in jobs}
        assert all(count == 1 for count in counts.values())

    def test_faults_were_actually_injected(self, faulty):
        injected = faulty.telemetry["faults"]["injected"]
        assert sum(injected.values()) > 0
        assert faulty.telemetry["faults"]["packs_failed"] > 0
        assert faulty.telemetry["faults"]["jobs_retried"] > 0

    def test_retried_decodes_are_bit_identical(self, clean_report, faulty):
        clean_bits = detection_bits(clean_report)
        for job_id, bits in detection_bits(faulty).items():
            assert bits == clean_bits[job_id]

    def test_chaos_run_is_deterministic(self, jobs, faulty):
        replay = run_faulty(jobs, self.PLAN)
        assert replay.trace == faulty.trace
        assert replay.telemetry["faults"] == faulty.telemetry["faults"]
        assert stamps(replay) == stamps(faulty)

    def test_timeline_stamps_stay_monotone(self, faulty):
        for result in faulty.results:
            assert (result.job.arrival_time_us <= result.flush_time_us
                    <= result.start_time_us <= result.finish_time_us)
        # Retries only move a job later, never earlier.
        for event in faulty.trace:
            if event.name == EVENT_JOB_RETRY:
                assert event.attrs["attempt"] >= 1

    def test_retry_events_match_telemetry(self, faulty):
        retries = sum(1 for e in faulty.trace if e.name == EVENT_JOB_RETRY)
        failed = sum(1 for e in faulty.trace if e.name == EVENT_PACK_FAILED)
        assert retries == faulty.telemetry["faults"]["jobs_retried"]
        assert failed == faulty.telemetry["faults"]["packs_failed"]

    def test_zero_rate_plan_matches_fault_free_run(self, jobs, clean_report):
        inert = run_faulty(jobs, FaultPlan(seed=1), max_retries=0)
        assert inert.trace == clean_report.trace
        assert stamps(inert) == stamps(clean_report)

    def test_retry_budget_exhaustion_sheds(self, jobs):
        # Every pack fails every time: one retry each, then give up.
        report = run_faulty(jobs, FaultPlan(seed=2, decode_error_rate=1.0),
                            max_retries=1)
        assert report.jobs_completed == 0
        assert len(report.shed_jobs) == len(jobs)
        stages = report.telemetry["faults"]["shed_stages"]
        assert stages.get("retry_budget") == len(jobs)

    def test_hopeless_retries_shed_at_deadline(self):
        trace = ArgosLikeTraceGenerator(
            num_bs_antennas=8, num_users=2,
            num_subcarriers=8).generate(num_frames=1, random_state=0)
        tight = PoissonTrafficGenerator(
            trace, modulations="QPSK", mean_interarrival_us=10.0,
            burst_subcarriers=4, user_snrs_db=20.0,
            deadline_us=1.0).generate(3, random_state=0)
        report = run_faulty(tight, FaultPlan(seed=2, decode_error_rate=1.0),
                            max_retries=10)
        assert report.jobs_completed == 0
        stages = report.telemetry["faults"]["shed_stages"]
        assert stages.get("retry_deadline") == len(tight)


# --------------------------------------------------------------------------- #
# Worker supervision (thread mode) and mode equivalence
# --------------------------------------------------------------------------- #

class TestSupervision:
    PLAN = FaultPlan(seed=1, crash_rate=0.25, decode_error_rate=0.25)

    def test_crashed_thread_workers_are_restarted(self, jobs):
        report = run_faulty(jobs, self.PLAN, mode="thread", num_workers=2)
        assert report.jobs_completed + len(report.shed_jobs) == len(jobs)
        restarts = report.telemetry["faults"]["worker_restarts"]
        assert restarts > 0
        events = [e for e in report.trace if e.name == EVENT_WORKER_RESTART]
        assert len(events) == restarts
        assert all(e.attrs["remaining"] >= 0 for e in events)

    def test_exhausted_restart_budget_still_loses_nothing(self, jobs):
        report = run_faulty(jobs, FaultPlan(seed=1, crash_rate=1.0),
                            mode="thread", num_workers=2,
                            max_retries=1, restart_budget=0)
        assert report.jobs_completed == 0
        assert len(report.shed_jobs) == len(jobs)
        assert report.telemetry["faults"]["worker_restarts"] == 0

    def test_thread_and_process_modes_account_identically(self, jobs):
        threaded = run_faulty(jobs, self.PLAN, mode="thread", num_workers=2)
        process = run_faulty(jobs, self.PLAN, mode="process", num_workers=2)
        assert stamps(threaded) == stamps(process)
        assert ([j.job_id for j in threaded.shed_jobs]
                == [j.job_id for j in process.shed_jobs])
        assert (threaded.telemetry["faults"]
                == process.telemetry["faults"])

    def test_inline_and_thread_bits_agree(self, jobs):
        inline = run_faulty(jobs, self.PLAN)
        threaded = run_faulty(jobs, self.PLAN, mode="thread", num_workers=2)
        assert detection_bits(inline) == detection_bits(threaded)


# --------------------------------------------------------------------------- #
# Brownout at the service boundary
# --------------------------------------------------------------------------- #

class TestServiceBrownout:
    def test_overload_opens_sheds_hopeless_and_recovers(self):
        trace = ArgosLikeTraceGenerator(
            num_bs_antennas=8, num_users=2,
            num_subcarriers=8).generate(num_frames=1, random_state=0)
        link_jobs = PoissonTrafficGenerator(
            trace, modulations="QPSK", mean_interarrival_us=2.0,
            burst_subcarriers=4, user_snrs_db=20.0,
            deadline_us=50.0).generate(8, random_state=0)
        # Two relaxed stragglers long after the flood: the first one's
        # submission flushes the backlog (timeout), the second then finds
        # the queue drained, so the breaker closes and admits it untouched.
        # (The breaker samples depth *before* the scheduler reacts to the
        # new arrival, so observing the close takes one extra arrival.)
        last = link_jobs[-1]
        relaxed = [
            DecodeJob(
                job_id=last.job_id + 1 + i, user_id=0, frame=0, subcarrier=i,
                channel_use=last.channel_use,
                arrival_time_us=last.arrival_time_us + 500_000.0 * (i + 1),
                deadline_us=float("inf"), seed=1234 + i)
            for i in range(2)
        ]
        report = CranService(
            make_decoder(), max_batch=32, max_wait_us=100_000.0,
            tracing=True,
            brownout=BrownoutConfig(open_queue_depth=4,
                                    close_queue_depth=1),
        ).run(link_jobs + relaxed)
        faults = report.telemetry["faults"]
        assert faults["brownout_openings"] >= 1
        assert faults["shed_stages"].get("brownout", 0) >= 1
        names = [e.name for e in report.trace]
        assert EVENT_BROWNOUT_OPEN in names
        assert names.index(EVENT_BROWNOUT_OPEN) \
            < names.index(EVENT_BROWNOUT_CLOSE)
        # The breaker never sheds best-effort (infinite-deadline) jobs.
        relaxed_ids = {job.job_id for job in relaxed}
        assert not relaxed_ids & {job.job_id for job in report.shed_jobs}
        assert report.jobs_completed + len(report.shed_jobs) \
            == len(link_jobs) + len(relaxed)

    def test_brownout_sheds_are_terminal_trace_events(self):
        trace = ArgosLikeTraceGenerator(
            num_bs_antennas=8, num_users=2,
            num_subcarriers=8).generate(num_frames=1, random_state=0)
        link_jobs = PoissonTrafficGenerator(
            trace, modulations="QPSK", mean_interarrival_us=2.0,
            burst_subcarriers=4, user_snrs_db=20.0,
            deadline_us=50.0).generate(8, random_state=0)
        report = CranService(
            make_decoder(), max_batch=32, max_wait_us=100_000.0,
            tracing=True,
            brownout=BrownoutConfig(open_queue_depth=4,
                                    close_queue_depth=1),
        ).run(link_jobs)
        counts = terminal_counts(report)
        assert set(counts) == {job.job_id for job in link_jobs}
        assert all(count == 1 for count in counts.values())


# --------------------------------------------------------------------------- #
# Gateway submission faults
# --------------------------------------------------------------------------- #

class TestGatewayFaults:
    def test_gateway_drops_are_deterministic_and_accounted(self, jobs):
        plan = FaultPlan(seed=9, gateway_error_rate=0.3)
        expected = {job.job_id for job in jobs
                    if plan.gateway_fault(job.job_id)}
        assert expected, "seed must hit at least one job for this test"

        def run_gateway():
            service = CranService(make_decoder(), max_batch=4,
                                  max_wait_us=50_000.0, tracing=True,
                                  fault_plan=plan)
            gateway = service.gateway(admission_limit=64)
            for job in jobs:
                gateway.submit(job)
            report = gateway.close()
            return report, gateway.ingress_info()

        report, info = run_gateway()
        assert info["gateway_faults"] == len(expected)
        assert {job.job_id for job in report.shed_jobs} == expected
        assert report.jobs_completed + len(report.shed_jobs) == len(jobs)
        shed_events = [e for e in report.trace if e.name == EVENT_JOB_SHED
                       and e.attrs.get("stage") == "gateway_fault"]
        assert {e.job_id for e in shed_events} == expected
        # Replay: the drop set is a pure function of (seed, job_id).
        replay, replay_info = run_gateway()
        assert {job.job_id for job in replay.shed_jobs} == expected
        assert replay_info["gateway_faults"] == info["gateway_faults"]


# --------------------------------------------------------------------------- #
# Worker-pool failure surfacing (satellites: aggregate errors, KI escape)
# --------------------------------------------------------------------------- #

def _uplink_jobs(constellation, start_id):
    link = MimoUplink(num_users=2, constellation=constellation)
    rng = np.random.default_rng(start_id)
    return [
        DecodeJob(job_id=start_id + i, user_id=0, frame=0, subcarrier=i,
                  channel_use=link.transmit(random_state=rng),
                  arrival_time_us=10.0 * i, deadline_us=10.0 * i + 1e6,
                  seed=500 + start_id + i)
        for i in range(2)
    ]


def _batch(batch_jobs, flush_time_us):
    return DecodeBatch(jobs=tuple(batch_jobs),
                       structure_key=batch_jobs[0].structure_key,
                       flush_time_us=flush_time_us, reason="full")


class TestWorkerPoolErrors:
    def test_concurrent_failures_aggregate_into_worker_pool_error(self):
        import threading

        barrier = threading.Barrier(2, timeout=30.0)

        class RendezvousBoom:
            class annealer:  # noqa: D106 - attribute shim for accounting
                overheads = QuantumAnnealerSimulator(
                    ChimeraGraph.ideal(2, 2)).overheads

            def detect_batch(self, channel_uses, random_states=None):
                # Both workers must be mid-decode before either fails, so
                # neither failure can degrade the other worker to drain
                # mode first — the close() error report must list both.
                barrier.wait()
                raise RuntimeError("boom")

        pool = WorkerPool(RendezvousBoom(), num_workers=2, mode="thread",
                          autostart=False)
        # Distinct structure keys route to distinct shards.
        pool.submit(_batch(_uplink_jobs("BPSK", 0), flush_time_us=10.0))
        pool.submit(_batch(_uplink_jobs("QPSK", 10), flush_time_us=20.0))
        pool.start()
        with pytest.raises(WorkerPoolError) as excinfo:
            pool.close()
        assert len(excinfo.value.errors) == 2
        assert all(str(e) == "boom" for e in excinfo.value.errors)
        assert "2 worker errors" in str(excinfo.value)
        # Both packs' jobs are accounted as shed — nothing is lost.
        assert sorted(job.job_id for job in pool.shed_jobs) == [0, 1, 10, 11]

    def test_single_failure_still_raises_the_original_error(self):
        class Boom:
            class annealer:  # noqa: D106
                overheads = QuantumAnnealerSimulator(
                    ChimeraGraph.ideal(2, 2)).overheads

            def detect_batch(self, channel_uses, random_states=None):
                raise RuntimeError("boom")

        pool = WorkerPool(Boom(), num_workers=1, mode="thread")
        pool.submit(_batch(_uplink_jobs("BPSK", 0), flush_time_us=10.0))
        with pytest.raises(RuntimeError, match="boom"):
            pool.close()

    def test_keyboard_interrupt_escapes_the_worker_loop(self, monkeypatch):
        import threading

        seen = []
        done = threading.Event()

        def excepthook(args):
            seen.append(args.exc_type)
            done.set()

        monkeypatch.setattr(threading, "excepthook", excepthook)

        class Interrupted:
            class annealer:  # noqa: D106
                overheads = QuantumAnnealerSimulator(
                    ChimeraGraph.ideal(2, 2)).overheads

            def detect_batch(self, channel_uses, random_states=None):
                raise KeyboardInterrupt

        pool = WorkerPool(Interrupted(), num_workers=1, mode="thread")
        pool.submit(_batch(_uplink_jobs("BPSK", 0), flush_time_us=10.0))
        assert done.wait(timeout=30.0)
        # The interrupt killed the worker loudly instead of being folded
        # into fault accounting: close() has no error to re-raise.
        assert seen == [KeyboardInterrupt]
        pool.close()
        assert pool.results() == []


# --------------------------------------------------------------------------- #
# Property-based lifecycle checks
# --------------------------------------------------------------------------- #

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


class TestChaosProperties:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**16),
           crash=st.floats(min_value=0.0, max_value=0.4),
           decode=st.floats(min_value=0.0, max_value=0.4),
           slow=st.floats(min_value=0.0, max_value=0.2),
           retries=st.integers(min_value=0, max_value=3))
    def test_every_job_terminates_exactly_once(self, jobs, clean_report,
                                               seed, crash, decode, slow,
                                               retries):
        plan = FaultPlan(seed=seed, crash_rate=crash,
                         decode_error_rate=decode, slow_rate=slow)
        report = run_faulty(jobs, plan, max_retries=retries)
        assert report.jobs_completed + len(report.shed_jobs) == len(jobs)
        counts = terminal_counts(report)
        assert set(counts) == {job.job_id for job in jobs}
        assert all(count == 1 for count in counts.values())
        # Whatever completed is bit-identical to the fault-free decode.
        clean_bits = detection_bits(clean_report)
        for job_id, bits in detection_bits(report).items():
            assert bits == clean_bits[job_id]
        # Stamps stay monotone on every surviving timeline.
        for result in report.results:
            assert (result.job.arrival_time_us <= result.flush_time_us
                    <= result.start_time_us <= result.finish_time_us)
