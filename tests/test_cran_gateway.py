"""Tests for the ingress gateway: merging, admission control, re-stamping."""

import asyncio
import threading

import pytest

from repro.channel.trace import ArgosLikeTraceGenerator
from repro.cran.gateway import IngressGateway
from repro.cran.service import CranService
from repro.cran.traffic import PoissonTrafficGenerator
from repro.exceptions import SchedulingError


@pytest.fixture(scope="module")
def traffic():
    trace = ArgosLikeTraceGenerator(num_bs_antennas=8, num_users=2,
                                    num_subcarriers=6).generate(
        num_frames=2, random_state=0)
    generator = PoissonTrafficGenerator(
        trace, modulations=("BPSK", "QPSK"), mean_interarrival_us=2_000.0,
        burst_subcarriers=2, deadline_us=100_000.0)
    return generator.generate(10, random_state=11)


def make_service(**kwargs):
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait_us", 5_000.0)
    return CranService(**kwargs)


class TestIngressGateway:
    def test_single_producer_matches_run(self, traffic):
        # An in-order single-producer feed is exactly the batch interface:
        # same scheduling decisions, detections and telemetry.
        batch_report = make_service().run(traffic)
        gateway = make_service().gateway()
        for job in traffic:
            assert gateway.submit(job)
        report = gateway.close()
        assert [r.job.job_id for r in report.results] == \
            [r.job.job_id for r in batch_report.results]
        for a, b in zip(report.results, batch_report.results):
            assert (a.result.detection.bits == b.result.detection.bits).all()
            assert a.flush_time_us == b.flush_time_us
            assert a.finish_time_us == b.finish_time_us
        ingress = report.telemetry.pop("ingress")
        assert report.telemetry == batch_report.telemetry
        assert ingress["offered"] == len(traffic)
        assert ingress["dispatched"] == len(traffic)
        assert ingress["gateway_shed"] == 0
        assert ingress["late_restamped"] == 0
        assert ingress["cells"] == len({job.user_id for job in traffic})

    def test_close_is_idempotent_and_submit_after_close_rejected(self,
                                                                 traffic):
        gateway = make_service().gateway()
        gateway.submit(traffic[0])
        report = gateway.close()
        assert gateway.close() is report
        assert gateway.closed
        with pytest.raises(SchedulingError, match="closed"):
            gateway.submit(traffic[1])

    def test_concurrent_producers_decode_every_admitted_job(self, traffic):
        # One producer thread per cell, racing: every job is admitted
        # (block policy) and decoded; re-stamping keeps the scheduler's
        # clock monotone whatever the interleaving.
        gateway = make_service().gateway(admission_limit=4,
                                         overload_policy="block")
        by_cell = {}
        for job in traffic:
            by_cell.setdefault(job.user_id, []).append(job)

        def feed(cell, jobs):
            for job in jobs:
                gateway.submit(job, cell=cell)

        threads = [threading.Thread(target=feed, args=item)
                   for item in by_cell.items()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report = gateway.close()
        assert [r.job.job_id for r in report.results] == \
            [job.job_id for job in sorted(traffic, key=lambda j: j.job_id)]
        assert report.shed_jobs == []
        ingress = report.telemetry["ingress"]
        assert ingress["dispatched"] == len(traffic)
        assert ingress["cells"] == len(by_cell)

    def test_concurrent_results_bit_identical_to_serial(self, traffic):
        # Whatever the producer interleaving does to *timing*, the decoded
        # bits of every job are those of the in-order batch replay.
        serial = {r.job.job_id: r.result.detection.bits
                  for r in make_service().run(traffic).results}
        gateway = make_service().gateway(overload_policy="block")
        threads = [
            threading.Thread(target=lambda chunk=chunk: [
                gateway.submit(job, cell=index) for job in chunk])
            for index, chunk in enumerate(
                (traffic[0::2], traffic[1::2]))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report = gateway.close()
        assert len(report.results) == len(traffic)
        for result in report.results:
            assert (result.result.detection.bits ==
                    serial[result.job.job_id]).all()

    def test_late_submission_restamped_not_rejected(self, traffic):
        gateway = make_service().gateway()
        # Push the scheduler clock forward, then offer a job whose nominal
        # arrival is far in the past.
        last = traffic[-1]
        assert gateway.submit(last, cell="fast")
        early = traffic[0]
        assert early.arrival_time_us < last.arrival_time_us
        # Wait until the dispatcher has actually advanced the clock, or the
        # early job might win the merge race and arrive on time.
        for _ in range(2_000):
            if gateway._session.clock_us >= last.arrival_time_us:
                break
            threading.Event().wait(0.001)
        assert gateway.submit(early, cell="slow")
        report = gateway.close()
        ingress = report.telemetry["ingress"]
        assert ingress["late_restamped"] == 1
        restamped = [r for r in report.results
                     if r.job.job_id == early.job_id]
        assert len(restamped) == 1
        # Re-stamped to the merge point, never decoded under a stale clock.
        assert restamped[0].job.arrival_time_us >= last.arrival_time_us
        assert restamped[0].job.deadline_us >= \
            restamped[0].job.arrival_time_us

    def test_admission_limit_sheds_into_report(self, traffic):
        # A gateway that cannot dispatch (scheduler wedged behind a slow
        # consumer) is simulated by flooding far past the admission bound
        # from one thread while the dispatcher competes for the same jobs;
        # with the shed policy the report must account every offered job.
        gateway = make_service().gateway(admission_limit=1,
                                         overload_policy="shed")
        admitted = [gateway.submit(job) for job in traffic]
        report = gateway.close()
        ingress = report.telemetry["ingress"]
        assert ingress["offered"] == len(traffic)
        assert ingress["gateway_shed"] == len(traffic) - sum(admitted)
        assert len(report.results) == sum(admitted)
        assert sum(admitted) >= 1
        shed_ids = {job.job_id for job in report.shed_jobs}
        decoded_ids = {r.job.job_id for r in report.results}
        assert shed_ids | decoded_ids == {job.job_id for job in traffic}
        assert not (shed_ids & decoded_ids)

    def test_per_cell_limit_isolates_cells(self, traffic):
        gateway = make_service().gateway(admission_limit=64,
                                         per_cell_limit=1,
                                         overload_policy="shed")
        # Stall the merge by never starting: feed from this thread only;
        # the dispatcher drains concurrently, so admissions interleave, but
        # a per-cell bound of 1 can never hold two jobs of one cell at once.
        results = [gateway.submit(job) for job in traffic]
        report = gateway.close()
        assert sum(results) == len(report.results)
        assert report.telemetry["ingress"]["backlog_max"] <= \
            len({job.user_id for job in traffic})

    def test_invalid_configuration_rejected(self):
        service = make_service()
        with pytest.raises(SchedulingError):
            IngressGateway(service, overload_policy="panic")
        with pytest.raises(Exception):
            IngressGateway(service, admission_limit=0)
        with pytest.raises(Exception):
            IngressGateway(service, per_cell_limit=0)

    def test_async_submission(self, traffic):
        gateway = make_service().gateway(overload_policy="block")

        async def ingest():
            for job in traffic:
                assert await gateway.submit_async(job)

        asyncio.run(ingest())
        report = gateway.close()
        assert len(report.results) == len(traffic)
        assert report.telemetry["ingress"]["dispatched"] == len(traffic)
