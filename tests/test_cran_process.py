"""Process-pool execution mode of the C-RAN worker pool.

The contracts mirror the threaded mode's, plus the process-specific ones:

* per-job detections are bit-for-bit identical to inline serving (each job
  decodes from its own private stream, wherever it runs);
* virtual-time accounting — and with it every latency/deadline statistic —
  is identical to the threaded mode for the same offered load and worker
  count (batches credit in flush order in both);
* the shared-memory result channel round-trips outcomes exactly;
* worker failures are accounted as shed and surfaced at ``close()``.
"""

import math
import pickle

import numpy as np
import pytest

from repro.annealer.chimera import ChimeraGraph
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.channel.trace import ArgosLikeTraceGenerator
from repro.cran.jobs import DecodeJob
from repro.cran.scheduler import DecodeBatch
from repro.cran.service import CranService
from repro.cran.traffic import PoissonTrafficGenerator
from repro.cran.workers import (
    MODES,
    WorkerPool,
    _export_outcomes,
    _import_outcomes,
)
from repro.decoder.quamax import QuAMaxDecoder
from repro.exceptions import SchedulingError
from repro.mimo.system import MimoUplink


def make_decoder():
    return QuAMaxDecoder(QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
                         AnnealerParameters(num_anneals=8))


class BoomDecoder:
    """Minimal decoder stand-in whose batch decode always fails."""

    class annealer:  # noqa: D106 - attribute shim for service accounting
        overheads = QuantumAnnealerSimulator(
            ChimeraGraph.ideal(2, 2)).overheads

    def detect_batch(self, channel_uses, random_states=None):
        raise RuntimeError("boom")


def make_boom_decoder():
    return BoomDecoder()


@pytest.fixture(scope="module")
def decoder():
    return make_decoder()


@pytest.fixture(scope="module")
def job_pool():
    link = MimoUplink(num_users=2, constellation="BPSK")
    rng = np.random.default_rng(0)
    return [
        DecodeJob(job_id=i, user_id=0, frame=0, subcarrier=i,
                  channel_use=link.transmit(random_state=rng),
                  arrival_time_us=10.0 * i, deadline_us=10.0 * i + 1e6,
                  seed=200 + i)
        for i in range(8)
    ]


def make_batch(jobs, flush_time_us, reason="full"):
    return DecodeBatch(jobs=tuple(jobs),
                       structure_key=jobs[0].structure_key,
                       flush_time_us=flush_time_us, reason=reason)


class TestSharedMemoryChannel:
    def test_export_import_roundtrip(self, decoder, job_pool):
        outcomes = decoder.detect_batch(
            [job.channel_use for job in job_pool[:3]],
            random_states=[job.rng() for job in job_pool[:3]])
        pickled, shm_name, sizes = _export_outcomes(outcomes)
        # Real ndarray payloads must actually travel out of band.
        assert shm_name is not None
        assert sizes and all(size > 0 for size in sizes)
        restored = _import_outcomes(pickled, shm_name, sizes)
        assert len(restored) == len(outcomes)
        for original, copy_ in zip(outcomes, restored):
            np.testing.assert_array_equal(original.detection.bits,
                                          copy_.detection.bits)
            np.testing.assert_array_equal(original.run.solutions.samples,
                                          copy_.run.solutions.samples)
            np.testing.assert_array_equal(original.run.solutions.energies,
                                          copy_.run.solutions.energies)
            # Restored arrays are detached copies, not shm views: the
            # segment was unlinked inside _import_outcomes, so surviving
            # views would be dangling.
            copy_.run.solutions.energies.sum()

    def test_inline_fallback_for_empty_buffers(self):
        pickled, shm_name, sizes = _export_outcomes(["no", "arrays", 7])
        assert shm_name is None
        assert _import_outcomes(pickled, shm_name, sizes) == ["no", "arrays", 7]

    def test_failed_unpickle_still_unlinks_the_segment(self, monkeypatch):
        from multiprocessing import shared_memory

        pickled, shm_name, sizes = _export_outcomes(
            [np.arange(64, dtype=np.float64)])
        assert shm_name is not None

        def corrupt_loads(data, buffers=None):
            raise ValueError("corrupt result payload")

        monkeypatch.setattr("repro.cran.workers.pickle.loads", corrupt_loads)
        # The parent-side failure propagates unmasked...
        with pytest.raises(ValueError, match="corrupt result payload"):
            _import_outcomes(pickled, shm_name, sizes)
        # ...and the segment was unlinked exactly once regardless: there is
        # nothing left to attach to (no leak), and a second unlink inside
        # the cleanup would have raised out of the first call already.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shm_name)


class TestProcessPool:
    def test_invalid_mode_rejected(self, decoder):
        assert MODES == ("thread", "process")
        with pytest.raises(SchedulingError):
            WorkerPool(decoder, num_workers=1, mode="coroutine",
                       autostart=False)

    def test_detections_identical_to_inline(self, decoder, job_pool):
        inline = WorkerPool(decoder)
        for start in (0, 3):
            inline.submit(make_batch(job_pool[start:start + 3],
                                     flush_time_us=50.0 + start))
        with WorkerPool(make_decoder(), num_workers=2,
                        mode="process") as pool:
            for start in (0, 3):
                pool.submit(make_batch(job_pool[start:start + 3],
                                       flush_time_us=50.0 + start))
        expected = inline.results()
        actual = pool.results()
        assert [r.job.job_id for r in actual] == [r.job.job_id
                                                  for r in expected]
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)
            np.testing.assert_array_equal(a.result.run.solutions.samples,
                                          b.result.run.solutions.samples)

    def test_accounting_matches_threaded_mode(self, job_pool):
        batches = [make_batch(job_pool[0:3], flush_time_us=50.0),
                   make_batch(job_pool[3:6], flush_time_us=60.0),
                   make_batch(job_pool[6:8], flush_time_us=70.0)]
        timelines = {}
        for mode in MODES:
            with WorkerPool(make_decoder(), num_workers=2,
                            mode=mode) as pool:
                for batch in batches:
                    pool.submit(batch)
            timelines[mode] = [(r.job.job_id, r.flush_time_us,
                                r.start_time_us, r.finish_time_us)
                               for r in pool.results()]
        assert timelines["process"] == timelines["thread"]

    def test_worker_failure_sheds_and_surfaces(self, job_pool):
        pool = WorkerPool(BoomDecoder(), num_workers=1, mode="process",
                          decoder_factory=make_boom_decoder)
        pool.submit(make_batch(job_pool[:2], flush_time_us=10.0))
        with pytest.raises(Exception):
            pool.close()
        assert [job.job_id for job in pool.shed_jobs] == [0, 1]
        assert pool.results() == []

    def test_batches_and_jobs_pickle(self, job_pool):
        batch = make_batch(job_pool[:2], flush_time_us=5.0)
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.size == 2
        assert clone.jobs[0].structure_key == batch.jobs[0].structure_key
        np.testing.assert_array_equal(
            clone.jobs[0].channel_use.received,
            batch.jobs[0].channel_use.received)
        # The private stream is part of the spec: a shipped job recreates
        # the exact generator its origin would have used.
        assert (clone.jobs[0].rng().random(4)
                == batch.jobs[0].rng().random(4)).all()


class TestProcessService:
    @pytest.fixture(scope="class")
    def jobs(self):
        trace = ArgosLikeTraceGenerator(
            num_bs_antennas=8, num_users=2,
            num_subcarriers=8).generate(num_frames=1, random_state=0)
        generator = PoissonTrafficGenerator(
            trace, modulations="QPSK", mean_interarrival_us=10.0,
            burst_subcarriers=4, user_snrs_db=20.0, deadline_us=120_000.0)
        return generator.generate(5, random_state=0)

    def test_service_process_mode_identical_and_deterministic(self, jobs):
        decoder = make_decoder()
        inline = CranService(decoder, max_batch=4,
                             max_wait_us=50_000.0).run(jobs)
        process = CranService(decoder, max_batch=4, max_wait_us=50_000.0,
                              num_workers=2, mode="process").run(jobs)
        assert process.jobs_completed == inline.jobs_completed == len(jobs)
        for a, b in zip(inline.results, process.results):
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)
        threaded = CranService(decoder, max_batch=4, max_wait_us=50_000.0,
                               num_workers=2, mode="thread").run(jobs)
        # Virtual-clock telemetry is a deterministic function of the load
        # and worker count — identical across execution modes.
        assert (process.telemetry["latency_us"]
                == threaded.telemetry["latency_us"])
        assert (process.telemetry["deadline_miss_rate"]
                == threaded.telemetry["deadline_miss_rate"])

    def test_service_report_ber_survives_process_mode(self, jobs):
        report = CranService(make_decoder(), max_batch=4,
                             max_wait_us=math.inf, num_workers=1,
                             mode="process").run(jobs)
        ber = report.bit_error_rate()
        assert ber is not None and 0.0 <= ber <= 1.0
