"""Property-based fuzz of the EDF batch scheduler's invariants.

Hypothesis drives :class:`~repro.cran.scheduler.EDFBatchScheduler` with
randomised offered loads (mixed structures, deadlines from tight to
best-effort) and randomised policies (batch bound, wait budget, adaptive
decode-time models), checking the contracts every consumer of the scheduler
— the worker pool's virtual-time accounting, the telemetry, the ingress
gateway's monotone merge — silently relies on:

* conservation — after drain, every submitted job was emitted exactly once;
* structure homogeneity — a batch only packs jobs of its structure key;
* the batch bound — never more than ``max_batch`` jobs, and ``full``
  flushes are exactly full;
* causal, monotone stamps — a flush is never stamped before a member's
  arrival, and emission order never goes back in time;
* EDF order — most-urgent-first within every batch, ties by job id;
* the wait budget — a timeout flush never exceeds the oldest member's
  arrival plus ``max_wait_us`` (adaptive models only ever shorten it);
* determinism — replaying the same load through a fresh scheduler
  reproduces the same batches, stamps and reasons bit for bit.

The jobs here are synthetic (a small pool of real channel uses is reused
across examples); decode correctness has its own suites — this one is about
scheduling policy alone, so hundreds of examples stay cheap enough for CI.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.cran.jobs import DecodeJob
from repro.cran.scheduler import (
    FLUSH_DRAIN,
    FLUSH_FULL,
    FLUSH_TIMEOUT,
    EDFBatchScheduler,
)
from repro.mimo.system import MimoUplink

#: A few real channel uses, one per problem structure; every synthetic job
#: borrows one, so structure keys are genuine and cheap.
_CHANNEL_POOL = [
    MimoUplink(num_users=2, constellation="BPSK").transmit(random_state=0),
    MimoUplink(num_users=2, constellation="QPSK").transmit(random_state=1),
    MimoUplink(num_users=3, constellation="BPSK").transmit(random_state=2),
]


@st.composite
def offered_loads(draw):
    """A list of jobs in arrival order plus a scheduler policy."""
    events = draw(st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=3_000.0),   # inter-arrival µs
            st.integers(min_value=0, max_value=len(_CHANNEL_POOL) - 1),
            st.one_of(                                     # deadline slack µs
                st.just(math.inf),
                st.floats(min_value=10.0, max_value=50_000.0)),
        ),
        min_size=1, max_size=40))
    jobs = []
    now = 0.0
    for job_id, (gap, structure, slack) in enumerate(events):
        now += gap
        jobs.append(DecodeJob(
            job_id=job_id, user_id=structure, frame=0, subcarrier=0,
            channel_use=_CHANNEL_POOL[structure],
            arrival_time_us=now, deadline_us=now + slack))
    max_batch = draw(st.integers(min_value=1, max_value=6))
    max_wait_us = draw(st.one_of(
        st.just(math.inf),
        st.floats(min_value=1.0, max_value=10_000.0)))
    model = None
    if draw(st.booleans()):
        overhead = draw(st.floats(min_value=0.0, max_value=5_000.0))
        per_job = draw(st.floats(min_value=0.0, max_value=2_000.0))
        model = lambda key, size: overhead + per_job * size  # noqa: E731
    return jobs, max_batch, max_wait_us, model


def replay(jobs, max_batch, max_wait_us, model):
    scheduler = EDFBatchScheduler(max_batch=max_batch,
                                  max_wait_us=max_wait_us,
                                  decode_time_model=model)
    batches = []
    for job in jobs:
        batches.extend(scheduler.submit(job))
    batches.extend(scheduler.drain())
    return scheduler, batches


class TestSchedulerInvariants:
    @settings(max_examples=120, deadline=None)
    @given(offered_loads())
    def test_invariants_hold_for_any_load_and_policy(self, load):
        jobs, max_batch, max_wait_us, model = load
        scheduler, batches = replay(jobs, max_batch, max_wait_us, model)

        # Conservation: every job emitted exactly once, nothing left behind.
        emitted = [job.job_id for batch in batches for job in batch.jobs]
        assert sorted(emitted) == [job.job_id for job in jobs]
        assert scheduler.queue_depth == 0
        assert scheduler.jobs_flushed == scheduler.jobs_submitted == len(jobs)

        last_stamp = 0.0
        arrival_of = {job.job_id: job.arrival_time_us for job in jobs}
        for batch in batches:
            # Structure homogeneity and the batch bound.
            assert all(job.structure_key == batch.structure_key
                       for job in batch.jobs)
            assert 1 <= batch.size <= max_batch
            if batch.reason == FLUSH_FULL:
                assert batch.size == max_batch
            assert batch.reason in (FLUSH_FULL, FLUSH_TIMEOUT, FLUSH_DRAIN)

            # Causal stamps, monotone in emission order.
            assert batch.flush_time_us >= max(
                arrival_of[job.job_id] for job in batch.jobs)
            assert batch.flush_time_us >= last_stamp
            last_stamp = batch.flush_time_us

            # EDF inside the pack: most urgent first, ties by id.
            order = [(job.deadline_us, job.job_id) for job in batch.jobs]
            assert order == sorted(order)

            # The wait budget: a timeout flush never overshoots the oldest
            # member's budget (an adaptive model only ever shortens it).
            if batch.reason == FLUSH_TIMEOUT and not math.isinf(max_wait_us):
                oldest = min(arrival_of[job.job_id] for job in batch.jobs)
                assert batch.flush_time_us <= oldest + max_wait_us + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(offered_loads())
    def test_replay_is_deterministic(self, load):
        jobs, max_batch, max_wait_us, model = load
        _, first = replay(jobs, max_batch, max_wait_us, model)
        _, second = replay(jobs, max_batch, max_wait_us, model)
        assert [(b.structure_key, b.flush_time_us, b.reason,
                 tuple(job.job_id for job in b.jobs)) for b in first] == \
            [(b.structure_key, b.flush_time_us, b.reason,
              tuple(job.job_id for job in b.jobs)) for b in second]

    @settings(max_examples=60, deadline=None)
    @given(offered_loads())
    def test_unbounded_wait_without_model_only_flushes_full_or_drain(
            self, load):
        jobs, max_batch, _max_wait_us, _model = load
        _, batches = replay(jobs, max_batch, math.inf, None)
        assert all(batch.reason in (FLUSH_FULL, FLUSH_DRAIN)
                   for batch in batches)
