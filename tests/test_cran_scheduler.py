"""Tests for the C-RAN serving layer's scheduler and its two core contracts.

The acceptance-critical properties live here:

(a) batched serving is *bit-identical* per job to serial ``detect_with_run``
    decoding under a fixed seed — batching is purely a throughput/latency
    policy, never a numerics change;
(b) the full-scale ``bench_cran`` offered load (batches of 16) still clearly
    out-serves a batch-size-1 scheduler in jobs/s — with the warm sampler
    cache the batch-1 baseline no longer rebuilds sampler state per job, so
    the ratio band is ~1.5-1.7x (see the calibration note on
    ``TestServingThroughput``).
"""

import math
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.annealer.chimera import ChimeraGraph
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.channel.trace import ArgosLikeTraceGenerator
from repro.cran.jobs import DecodeJob
from repro.cran.scheduler import (
    FLUSH_DRAIN,
    FLUSH_FULL,
    FLUSH_TIMEOUT,
    EDFBatchScheduler,
)
from repro.cran.service import CranService
from repro.cran.traffic import PoissonTrafficGenerator
from repro.decoder.quamax import QuAMaxDecoder
from repro.exceptions import SchedulingError
from repro.mimo.system import MimoUplink

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "perf"


def load_bench_cran():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_cran
    finally:
        sys.path.remove(str(BENCH_DIR))
    return bench_cran


@pytest.fixture(scope="module")
def channel_uses():
    """A pool of small channel uses for scheduler-level tests."""
    bpsk = MimoUplink(num_users=2, constellation="BPSK")
    qpsk = MimoUplink(num_users=2, constellation="QPSK")
    rng = np.random.default_rng(0)
    return {
        "BPSK": [bpsk.transmit(random_state=rng) for _ in range(8)],
        "QPSK": [qpsk.transmit(random_state=rng) for _ in range(8)],
    }


def make_job(channel_uses, job_id, arrival, deadline=math.inf,
             modulation="BPSK", user_id=0):
    return DecodeJob(job_id=job_id, user_id=user_id, frame=0,
                     subcarrier=job_id,
                     channel_use=channel_uses[modulation][job_id % 8],
                     arrival_time_us=arrival, deadline_us=deadline,
                     seed=job_id)


class TestEDFBatchScheduler:
    def test_flushes_when_group_fills(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=3, max_wait_us=math.inf)
        assert scheduler.submit(make_job(channel_uses, 0, 0.0)) == []
        assert scheduler.submit(make_job(channel_uses, 1, 1.0)) == []
        batches = scheduler.submit(make_job(channel_uses, 2, 2.0))
        assert len(batches) == 1
        assert batches[0].reason == FLUSH_FULL
        assert batches[0].size == 3
        assert batches[0].flush_time_us == 2.0
        assert scheduler.queue_depth == 0

    def test_structure_keys_batch_separately(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=2, max_wait_us=math.inf)
        scheduler.submit(make_job(channel_uses, 0, 0.0, modulation="BPSK"))
        scheduler.submit(make_job(channel_uses, 1, 1.0, modulation="QPSK"))
        assert scheduler.num_groups == 2
        batches = scheduler.submit(make_job(channel_uses, 2, 2.0,
                                            modulation="QPSK"))
        assert len(batches) == 1
        assert batches[0].structure_key[2] == "QPSK"
        assert scheduler.queue_depth == 1  # the BPSK job still pends

    def test_timeout_flush_stamped_at_exact_due_time(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=100.0)
        scheduler.submit(make_job(channel_uses, 0, 10.0))
        assert scheduler.advance(100.0) == []
        # Advancing far past the due time still stamps the exact due time,
        # so coarse event loops see the same schedule as fine-grained ones.
        batches = scheduler.advance(500.0)
        assert len(batches) == 1
        assert batches[0].reason == FLUSH_TIMEOUT
        assert batches[0].flush_time_us == 110.0

    def test_submission_triggers_due_timeouts_first(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=100.0)
        scheduler.submit(make_job(channel_uses, 0, 0.0, modulation="BPSK"))
        batches = scheduler.submit(make_job(channel_uses, 1, 300.0,
                                            modulation="QPSK"))
        assert len(batches) == 1
        assert batches[0].jobs[0].job_id == 0
        assert batches[0].flush_time_us == 100.0

    def test_arrival_at_exact_due_time_rides_the_flush(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=100.0)
        scheduler.submit(make_job(channel_uses, 0, 0.0))
        # Same structure, arriving at the group's exact due time: one size-2
        # batch at t=100, not a size-1 flush plus a stranded fresh group.
        batches = scheduler.submit(make_job(channel_uses, 1, 100.0))
        assert len(batches) == 1
        assert batches[0].size == 2
        assert batches[0].flush_time_us == 100.0
        assert batches[0].reason == FLUSH_TIMEOUT
        assert scheduler.queue_depth == 0

    def test_arrival_after_due_time_excluded_from_stale_flush(self,
                                                              channel_uses):
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=100.0)
        scheduler.submit(make_job(channel_uses, 0, 0.0))
        # The group's stamp (t=100) precedes this arrival (t=150): the new
        # job must not ride in a batch flushed before it existed.
        batches = scheduler.submit(make_job(channel_uses, 1, 150.0))
        assert len(batches) == 1
        assert batches[0].size == 1
        assert batches[0].flush_time_us == 100.0
        assert scheduler.queue_depth == 1

    def test_jobs_inside_batch_are_edf_ordered(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=3, max_wait_us=math.inf)
        scheduler.submit(make_job(channel_uses, 0, 0.0, deadline=900.0))
        scheduler.submit(make_job(channel_uses, 1, 1.0, deadline=300.0))
        batches = scheduler.submit(make_job(channel_uses, 2, 2.0,
                                            deadline=600.0))
        assert [job.job_id for job in batches[0].jobs] == [1, 2, 0]

    def test_simultaneous_timeouts_emit_most_urgent_first(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=50.0)
        scheduler.submit(make_job(channel_uses, 0, 0.0, deadline=5_000.0,
                                  modulation="BPSK"))
        scheduler.submit(make_job(channel_uses, 1, 0.0, deadline=1_000.0,
                                  modulation="QPSK"))
        batches = scheduler.advance(200.0)
        assert len(batches) == 2
        assert batches[0].structure_key[2] == "QPSK"
        assert batches[1].structure_key[2] == "BPSK"

    def test_drain_flushes_everything_urgent_first(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=math.inf)
        scheduler.submit(make_job(channel_uses, 0, 0.0, deadline=5_000.0,
                                  modulation="BPSK"))
        scheduler.submit(make_job(channel_uses, 1, 1.0, deadline=1_000.0,
                                  modulation="QPSK"))
        batches = scheduler.drain(now_us=10.0)
        assert [batch.reason for batch in batches] == [FLUSH_DRAIN] * 2
        assert batches[0].structure_key[2] == "QPSK"
        assert scheduler.queue_depth == 0

    def test_next_due_us_tracks_oldest_pending(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=100.0)
        assert scheduler.next_due_us() == math.inf
        scheduler.submit(make_job(channel_uses, 0, 40.0))
        assert scheduler.next_due_us() == 140.0

    def test_time_must_be_monotonic(self, channel_uses):
        scheduler = EDFBatchScheduler()
        scheduler.advance(100.0)
        with pytest.raises(SchedulingError):
            scheduler.advance(50.0)
        with pytest.raises(SchedulingError):
            scheduler.submit(make_job(channel_uses, 0, 10.0))

    def test_counters(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=2, max_wait_us=math.inf)
        scheduler.submit(make_job(channel_uses, 0, 0.0))
        scheduler.submit(make_job(channel_uses, 1, 1.0))
        scheduler.submit(make_job(channel_uses, 2, 2.0))
        assert scheduler.jobs_submitted == 3
        assert scheduler.jobs_flushed == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(Exception):
            EDFBatchScheduler(max_batch=0)
        with pytest.raises(Exception):
            EDFBatchScheduler(max_wait_us=-1.0)


class TestBatchedServingBitIdentical:
    """Acceptance (a): scheduler output == serial decoding, job by job."""

    def test_mixed_modulation_service_matches_serial(self):
        trace = ArgosLikeTraceGenerator(
            num_bs_antennas=12, num_users=3,
            num_subcarriers=8).generate(num_frames=2, random_state=0)
        generator = PoissonTrafficGenerator(
            trace, modulations=("BPSK", "QPSK"),
            mean_interarrival_us=500.0, burst_subcarriers=3,
            user_snrs_db=(18.0, 22.0, 26.0), deadline_us=1e9)
        jobs = generator.generate(5, random_state=2019)

        parameters = AnnealerParameters(num_anneals=15)
        service = CranService(
            QuAMaxDecoder(QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
                          parameters),
            max_batch=4, max_wait_us=2_000.0)
        report = service.run(jobs)
        assert report.jobs_completed == len(jobs)
        # Batches actually formed (this must not silently serialise).
        assert report.telemetry["mean_batch_fill"] > 1.0

        # A *fresh* machine decodes each job serially from the job's own
        # stream; the service results must match bit for bit.
        serial = QuAMaxDecoder(
            QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)), parameters)
        for result in report.results:
            reference = serial.detect_with_run(result.job.channel_use,
                                               random_state=result.job.rng())
            np.testing.assert_array_equal(reference.detection.bits,
                                          result.result.detection.bits)
            np.testing.assert_array_equal(
                reference.run.solutions.samples,
                result.result.run.solutions.samples)
            np.testing.assert_array_equal(
                reference.run.solutions.energies,
                result.result.run.solutions.energies)

    def test_batching_policy_does_not_change_results(self):
        trace = ArgosLikeTraceGenerator(
            num_bs_antennas=8, num_users=2,
            num_subcarriers=6).generate(num_frames=1, random_state=1)
        generator = PoissonTrafficGenerator(
            trace, modulations="BPSK", mean_interarrival_us=100.0,
            burst_subcarriers=2, deadline_us=1e9)
        jobs = generator.generate(4, random_state=7)
        decoder = QuAMaxDecoder(
            QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
            AnnealerParameters(num_anneals=10))
        one = CranService(decoder, max_batch=1, max_wait_us=math.inf).run(jobs)
        big = CranService(decoder, max_batch=8, max_wait_us=math.inf).run(jobs)
        for a, b in zip(one.results, big.results):
            assert a.job.job_id == b.job.job_id
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)


class TestServingThroughput:
    """Acceptance (b): full-scale bench shows batching beats batch-size-1.

    Calibration note: through PR 4 the batch-size-1 baseline ran its chain
    moves in the numpy loops and the pair measured ~3.5x.  The fused
    compiled cluster kernels re-centred it around ~3x (both sides compiled,
    the ratio bounded by the shared per-job anneal compute).  Since the
    structure-keyed warm sampler cache, the batch-size-1 side no longer
    rebuilds sampler state per job either — the very overhead batching used
    to amortise — so the baseline gained another ~2x and the ratio
    re-centres around ~1.5-1.7x, now reflecting only call marshalling and
    the residual per-job overheads.  The bar is the loud-failure level
    below that band; absolute throughput regressions (both sides) are
    guarded by the committed-record check below, and the cache's own win is
    guarded by the ``cran_warm_cache`` bench pair.
    """

    @pytest.mark.cran_perf
    def test_full_scale_bench_batching_wins(self):
        bench_cran = load_bench_cran()
        entry = bench_cran.bench_serving_speedup(bench_cran.SCALES["full"])
        if entry["speedup"] < 1.25:
            # One retry: the margin over the bar is real but a noisy CI
            # neighbour can eat it; a genuine regression fails both runs.
            entry = bench_cran.bench_serving_speedup(bench_cran.SCALES["full"])
        assert entry["detections_identical"]
        assert entry["mean_batch_fill"] == entry["params"]["max_batch"] == 16
        assert entry["speedup"] >= 1.25, (
            f"batched serving only {entry['speedup']:.2f}x over the "
            f"batch-size-1 scheduler")
        # Sharing one QA-job overhead across the pack must also show up in
        # the modelled latency, not just the wall clock.
        assert (entry["p99_latency_us_after"]
                < entry["p99_latency_us_before"])

    def test_committed_bench_record_carries_cran_entries(self):
        import json
        record = json.loads(
            (BENCH_DIR / "BENCH_core.json").read_text(encoding="utf-8"))
        serving = record["benchmarks"]["cran_serving"]
        assert serving["params"]["max_batch"] == 16
        assert serving["speedup"] >= 1.25
        assert serving["detections_identical"]
        # Absolute serving throughput must not regress below the PR-3/4
        # numpy-loop era record (159 jobs/s batched): the compiled cluster
        # kernels put the committed batched number in the hundreds.
        assert serving["jobs_per_s_after"] >= 300.0
        sweep = record["benchmarks"]["cran_load_sweep"]
        assert len(sweep["points"]) >= 3
        assert all("p99_latency_us" in point for point in sweep["points"])
        # The warm sampler cache must buy measurable batch-1 throughput
        # without touching a single decoded bit (committed full-scale pair:
        # ~1.4x on the 1-core acceptance box).
        warm = record["benchmarks"]["cran_warm_cache"]
        assert warm["params"]["max_batch"] == 1
        assert warm["speedup"] >= 1.1
        assert warm["detections_identical"]
        assert warm["sampler_cache"]["hits"] >= warm["params"]["num_jobs"]

    def test_merge_refuses_cross_scale_overwrite(self, tmp_path):
        import json
        bench_cran = load_bench_cran()
        output = tmp_path / "BENCH.json"
        output.write_text(json.dumps({"scale": "full", "benchmarks": {}}))
        # Quick-scale entries must not silently clobber a full-scale record.
        with pytest.raises(SystemExit):
            bench_cran.merge_report({"cran_serving": {}}, "quick", output)
        merged = bench_cran.merge_report({"cran_serving": {"speedup": 1.0}},
                                         "quick", output, force=True)
        assert merged["benchmarks"]["cran_serving"] == {"speedup": 1.0}
        assert merged["cran_scale"] == "quick"


class TestAdaptiveWait:
    """Deadline-driven adaptive max_wait: flush when slack hits the model."""

    @staticmethod
    def model_us(key, size):
        # A transparent linear model: 1000 us per pack + 100 us per member.
        return 1_000.0 + 100.0 * size

    def test_flushes_when_urgent_slack_drops_to_model(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=math.inf,
                                      decode_time_model=self.model_us)
        scheduler.submit(make_job(channel_uses, 0, arrival=0.0,
                                  deadline=5_000.0))
        # Slack hits the modelled decode time (1100 us for a 1-pack) at
        # t = 5000 - 1100 = 3900.
        assert scheduler.next_due_us() == pytest.approx(3_900.0)
        assert scheduler.advance(3_899.0) == []
        batches = scheduler.advance(3_900.0)
        assert len(batches) == 1
        assert batches[0].reason == FLUSH_TIMEOUT
        assert batches[0].flush_time_us == pytest.approx(3_900.0)

    def test_model_never_lengthens_the_bounded_wait(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=500.0,
                                      decode_time_model=self.model_us)
        scheduler.submit(make_job(channel_uses, 0, arrival=0.0,
                                  deadline=1e9))
        assert scheduler.next_due_us() == pytest.approx(500.0)
        batches = scheduler.advance(500.0)
        assert len(batches) == 1
        assert batches[0].flush_time_us == pytest.approx(500.0)

    def test_urgent_arrival_flushes_group_immediately(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=math.inf,
                                      decode_time_model=self.model_us)
        scheduler.submit(make_job(channel_uses, 0, arrival=0.0,
                                  deadline=1e9))
        # The newcomer's slack (800 us) is already below the 2-pack model
        # (1200 us): the whole group must flush at this very arrival, the
        # newcomer riding along.
        batches = scheduler.submit(make_job(channel_uses, 1, arrival=100.0,
                                            deadline=900.0))
        assert len(batches) == 1
        assert [job.job_id for job in batches[0].jobs] == [1, 0]
        assert batches[0].flush_time_us == pytest.approx(100.0)
        assert scheduler.queue_depth == 0

    def test_flush_stamp_never_precedes_newest_member(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=math.inf,
                                      decode_time_model=self.model_us)
        scheduler.submit(make_job(channel_uses, 0, arrival=0.0,
                                  deadline=1e9))
        # Adaptive due for the merged group would be 3500 - 1200 = 2300,
        # before this member even arrived; the stamp clamps to its arrival.
        batches = scheduler.submit(make_job(channel_uses, 1, arrival=3_000.0,
                                            deadline=3_500.0))
        assert len(batches) == 1
        assert batches[0].flush_time_us == pytest.approx(3_000.0)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf, -1.0,
                                     None, "soon"])
    def test_invalid_model_output_raises_instead_of_corrupting(
            self, channel_uses, bad):
        # A model emitting NaN/inf/negative (or non-numeric) estimates must
        # fail loudly: silently mixing such values into due times corrupts
        # EDF ordering and flush stamps.
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=math.inf,
                                      decode_time_model=lambda key, n: bad)
        with pytest.raises(SchedulingError, match="decode-time model"):
            scheduler.submit(make_job(channel_uses, 0, arrival=0.0,
                                      deadline=5_000.0))

    def test_zero_model_estimate_accepted(self, channel_uses):
        # Zero is a legal (if optimistic) estimate: flush exactly at the
        # deadline.
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=math.inf,
                                      decode_time_model=lambda key, n: 0.0)
        scheduler.submit(make_job(channel_uses, 0, arrival=0.0,
                                  deadline=5_000.0))
        assert scheduler.next_due_us() == pytest.approx(5_000.0)

    def test_model_not_consulted_for_best_effort_groups(self, channel_uses):
        # Best-effort (infinite-deadline) groups never query the model, so a
        # poisoned model cannot break a purely best-effort load.
        def poisoned(key, n):
            raise AssertionError("model must not be called")

        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=100.0,
                                      decode_time_model=poisoned)
        scheduler.submit(make_job(channel_uses, 0, arrival=0.0))
        assert scheduler.next_due_us() == pytest.approx(100.0)

    def test_best_effort_jobs_never_flush_adaptively(self, channel_uses):
        scheduler = EDFBatchScheduler(max_batch=8, max_wait_us=math.inf,
                                      decode_time_model=self.model_us)
        scheduler.submit(make_job(channel_uses, 0, arrival=0.0))  # inf dl
        assert scheduler.next_due_us() == math.inf
        assert scheduler.advance(1e9) == []
        drained = scheduler.drain()
        assert len(drained) == 1 and drained[0].reason == FLUSH_DRAIN

    def test_service_builds_model_only_when_asked(self, channel_uses):
        from repro.cran.service import decode_time_model_for

        decoder = QuAMaxDecoder(
            QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
            AnnealerParameters(num_anneals=10))
        assert CranService(decoder).scheduler_model() is None
        model = CranService(decoder, adaptive_wait=True).scheduler_model()
        assert model is not None
        key = make_job(channel_uses, 0, arrival=0.0).structure_key
        one = model(key, 1)
        four = model(key, 4)
        # One shared overhead plus per-member amortised compute: positive,
        # growing with pack size, and anchored on the decoder's overheads.
        overhead = decoder.annealer.overheads.total_us(10)
        assert one > overhead > 0.0
        assert four > one
        assert model is not decode_time_model_for  # bound model, not the fn

    def test_adaptive_detections_identical_to_fixed(self, channel_uses):
        decoder = QuAMaxDecoder(
            QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
            AnnealerParameters(num_anneals=8))
        jobs = [make_job(channel_uses, i, arrival=2_000.0 * i,
                         deadline=2_000.0 * i + 9_000.0)
                for i in range(6)]
        fixed = CranService(decoder, max_batch=4,
                            max_wait_us=8_000.0).run(jobs)
        adaptive = CranService(decoder, max_batch=4, max_wait_us=8_000.0,
                               adaptive_wait=True).run(jobs)
        assert adaptive.jobs_completed == fixed.jobs_completed == 6
        for a, b in zip(fixed.results, adaptive.results):
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)
        # The adaptive scheduler can only flush earlier, never later.
        for a, b in zip(fixed.results, adaptive.results):
            assert b.flush_time_us <= a.flush_time_us + 1e-9
