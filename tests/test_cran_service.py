"""Tests for the worker pool, telemetry and the end-to-end CranService."""

import json
import math

import numpy as np
import pytest

from repro.annealer.chimera import ChimeraGraph
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.channel.trace import ArgosLikeTraceGenerator
from repro.cran.jobs import DecodeJob
from repro.cran.scheduler import DecodeBatch
from repro.cran.service import CranService
from repro.cran.telemetry import TelemetryRecorder
from repro.cran.traffic import PoissonTrafficGenerator
from repro.cran.workers import WorkerPool
from repro.decoder.quamax import QuAMaxDecoder
from repro.exceptions import SchedulingError
from repro.mimo.system import MimoUplink


@pytest.fixture(scope="module")
def decoder():
    return QuAMaxDecoder(QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
                         AnnealerParameters(num_anneals=10))


@pytest.fixture(scope="module")
def job_pool():
    link = MimoUplink(num_users=2, constellation="BPSK")
    rng = np.random.default_rng(0)
    return [
        DecodeJob(job_id=i, user_id=0, frame=0, subcarrier=i,
                  channel_use=link.transmit(random_state=rng),
                  arrival_time_us=10.0 * i, deadline_us=10.0 * i + 1e6,
                  seed=100 + i)
        for i in range(8)
    ]


def make_batch(jobs, flush_time_us, reason="full"):
    return DecodeBatch(jobs=tuple(jobs),
                       structure_key=jobs[0].structure_key,
                       flush_time_us=flush_time_us, reason=reason)


class TestWorkerPool:
    def test_inline_decode_and_accounting(self, decoder, job_pool):
        pool = WorkerPool(decoder)
        batch = make_batch(job_pool[:3], flush_time_us=50.0)
        assert pool.submit(batch)
        results = pool.results()
        assert [r.job.job_id for r in results] == [0, 1, 2]
        first = results[0]
        # One shared QA-job overhead plus the pack's amortised compute.
        expected_service = (
            decoder.annealer.overheads.total_us(10)
            + sum(r.result.compute_time_us for r in results))
        assert first.start_time_us == 50.0
        assert first.finish_time_us == pytest.approx(50.0 + expected_service)
        # All jobs of a pack complete together.
        assert len({r.finish_time_us for r in results}) == 1
        assert all(r.batch_size == 3 for r in results)
        assert all(r.deadline_met for r in results)

    def test_virtual_machine_queues_consecutive_batches(self, decoder,
                                                        job_pool):
        pool = WorkerPool(decoder)
        pool.submit(make_batch(job_pool[:2], flush_time_us=0.0))
        pool.submit(make_batch(job_pool[2:4], flush_time_us=1.0))
        results = pool.results()
        first_finish = results[0].finish_time_us
        second = [r for r in results if r.job.job_id == 2][0]
        # The single virtual QA machine was busy: batch 2 starts when it
        # frees, not at its flush time.
        assert second.start_time_us == pytest.approx(first_finish)

    def test_multiple_virtual_machines_run_in_parallel(self, decoder,
                                                       job_pool):
        pool = WorkerPool(decoder, num_workers=2, autostart=False)
        pool.submit(make_batch(job_pool[:2], flush_time_us=0.0))
        pool.submit(make_batch(job_pool[2:4], flush_time_us=1.0))
        pool.start()
        pool.close()
        second = [r for r in pool.results() if r.job.job_id == 2][0]
        assert second.start_time_us == pytest.approx(1.0)

    def test_threaded_results_match_inline(self, decoder, job_pool):
        batches = [make_batch(job_pool[i:i + 2], flush_time_us=float(i))
                   for i in (0, 2, 4, 6)]
        inline = WorkerPool(decoder)
        for batch in batches:
            inline.submit(batch)
        threaded = WorkerPool(decoder, num_workers=1)
        for batch in batches:
            threaded.submit(batch)
        threaded.close()
        # Flush-order crediting makes the virtual timeline — not just the
        # decoded bits — identical between inline and threaded execution.
        for a, b in zip(inline.results(), threaded.results()):
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)
            assert a.start_time_us == b.start_time_us
            assert a.finish_time_us == b.finish_time_us

    def test_threaded_accounting_deterministic_across_runs(self, decoder,
                                                           job_pool):
        def run_once():
            pool = WorkerPool(decoder, num_workers=2)
            for i in (0, 2, 4, 6):
                pool.submit(make_batch(job_pool[i:i + 2],
                                       flush_time_us=float(i)))
            pool.close()
            return [(r.job.job_id, r.start_time_us, r.finish_time_us)
                    for r in pool.results()]

        assert run_once() == run_once()

    def test_blocking_submit_without_workers_raises(self, decoder, job_pool):
        pool = WorkerPool(decoder, num_workers=1, queue_capacity=1,
                          overload_policy="block", autostart=False)
        assert pool.submit(make_batch(job_pool[:2], flush_time_us=0.0))
        with pytest.raises(SchedulingError, match="start"):
            pool.submit(make_batch(job_pool[2:4], flush_time_us=1.0))
        pool.start()
        pool.close()
        assert [r.job.job_id for r in pool.results()] == [0, 1]

    def test_shed_policy_drops_overflow(self, decoder, job_pool):
        pool = WorkerPool(decoder, num_workers=1, queue_capacity=1,
                          overload_policy="shed", autostart=False)
        assert pool.submit(make_batch(job_pool[:2], flush_time_us=0.0))
        assert not pool.submit(make_batch(job_pool[2:4], flush_time_us=1.0))
        assert not pool.submit(make_batch(job_pool[4:6], flush_time_us=2.0))
        pool.start()
        pool.close()
        assert [r.job.job_id for r in pool.results()] == [0, 1]
        assert [job.job_id for job in pool.shed_jobs] == [2, 3, 4, 5]
        assert pool.telemetry.jobs_shed == 4
        assert pool.telemetry.shed_rate() == pytest.approx(4 / 6)

    def test_submit_after_close_rejected(self, decoder, job_pool):
        pool = WorkerPool(decoder)
        pool.close()
        with pytest.raises(SchedulingError):
            pool.submit(make_batch(job_pool[:1], flush_time_us=0.0))

    def test_invalid_policy_rejected(self, decoder):
        with pytest.raises(SchedulingError):
            WorkerPool(decoder, overload_policy="panic")

    def test_inline_failure_frees_crediting_slot(self, decoder, job_pool):
        class FlakyDecoder:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0
                self.annealer = inner.annealer

            def detect_batch(self, channel_uses, **kwargs):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("transient")
                return self.inner.detect_batch(channel_uses, **kwargs)

        pool = WorkerPool(FlakyDecoder(decoder))
        with pytest.raises(RuntimeError):
            pool.submit(make_batch(job_pool[:2], flush_time_us=0.0))
        # A caller treating the failure as transient keeps serving: later
        # batches must still decode AND be credited to results/telemetry.
        assert pool.submit(make_batch(job_pool[2:4], flush_time_us=1.0))
        assert [r.job.job_id for r in pool.results()] == [2, 3]
        assert pool.telemetry.jobs_completed == 2
        assert [job.job_id for job in pool.shed_jobs] == [0, 1]

    def test_dead_worker_never_deadlocks_blocking_producer(self, job_pool):
        class BoomDecoder:
            def detect_batch(self, channel_uses, **kwargs):
                raise RuntimeError("decoder exploded")

        pool = WorkerPool(BoomDecoder(), num_workers=1, queue_capacity=1,
                          overload_policy="block")
        # Far more batches than the queue holds: if the dead worker stopped
        # draining, the third submit would block forever.
        for start in (0, 2, 4, 6):
            assert pool.submit(make_batch(job_pool[start:start + 2],
                                          flush_time_us=float(start)))
        with pytest.raises(RuntimeError, match="decoder exploded"):
            pool.close()
        # Every job of every post-failure batch is accounted as shed.
        assert pool.results() == []
        assert len(pool.shed_jobs) == 8
        assert pool.telemetry.jobs_shed == 8

    def test_sticky_routing_round_robins_first_seen_structures(self, decoder,
                                                               job_pool):
        qpsk = MimoUplink(num_users=2, constellation="QPSK")
        rng = np.random.default_rng(7)
        qpsk_jobs = [
            DecodeJob(job_id=100 + i, user_id=0, frame=0, subcarrier=i,
                      channel_use=qpsk.transmit(random_state=rng),
                      arrival_time_us=0.0, seed=900 + i)
            for i in range(2)
        ]
        pool = WorkerPool(decoder, num_workers=2, queue_capacity=8,
                          autostart=False)
        pool.submit(make_batch(job_pool[:2], flush_time_us=0.0))
        pool.submit(make_batch(qpsk_jobs, flush_time_us=1.0))
        pool.submit(make_batch(job_pool[2:4], flush_time_us=2.0))
        # First-seen structures round-robin across shards; repeats stick to
        # their first shard, keeping that worker's sampler cache hot.
        assert [len(shard) for shard in pool._shards] == [2, 1]
        pool.start()
        pool.close()
        assert [r.job.job_id for r in pool.results()] == [0, 1, 2, 3, 100, 101]

    def test_idle_worker_steals_from_longest_shard(self, decoder, job_pool):
        pool = WorkerPool(decoder, num_workers=2, queue_capacity=8,
                          autostart=False)
        for start in (0, 2, 4):
            pool.submit(make_batch(job_pool[start:start + 2],
                                   flush_time_us=float(start)))
        # One structure key: sticky routing lands everything on shard 0.
        assert [len(shard) for shard in pool._shards] == [3, 0]
        with pool._lock:
            item = pool._take_locked(1)
            # Worker 1's own shard is empty, so it steals the oldest batch
            # from the longest other shard instead of going idle.
            assert item is not None
            assert item[0] == 0
            assert pool._steals == 1
            pool._shards[1].append(item)
            pool._pending += 1
        assert pool.steal_count == 1
        pool.start()
        pool.close()
        assert [r.job.job_id for r in pool.results()] == [0, 1, 2, 3, 4, 5]


class TestTelemetryRecorder:
    def test_batch_fill_and_latency(self, decoder, job_pool):
        telemetry = TelemetryRecorder()
        pool = WorkerPool(decoder, telemetry=telemetry)
        pool.submit(make_batch(job_pool[:3], flush_time_us=100.0))
        pool.submit(make_batch(job_pool[3:4], flush_time_us=200.0))
        assert telemetry.jobs_completed == 4
        assert telemetry.batches_decoded == 2
        assert telemetry.batch_fill_histogram == {1: 1, 3: 1}
        assert telemetry.mean_batch_fill() == pytest.approx(2.0)
        summary = telemetry.latency_summary()
        assert summary.count == 4
        assert summary[50.0] <= summary[99.0]
        snapshot = telemetry.snapshot()
        assert snapshot["jobs_completed"] == 4
        assert snapshot["latency_us"]["p99"] >= snapshot["latency_us"]["p50"]
        assert snapshot["flush_reasons"] == {"full": 2}

    def test_rolling_window_bounds_percentiles(self, decoder, job_pool):
        telemetry = TelemetryRecorder(window=2)
        pool = WorkerPool(decoder, telemetry=telemetry)
        pool.submit(make_batch(job_pool[:3], flush_time_us=0.0))
        assert telemetry.jobs_completed == 3
        assert telemetry.latency_summary().count == 2

    def test_deadline_misses_counted(self, decoder):
        link = MimoUplink(num_users=2, constellation="BPSK")
        # Deadline far tighter than one QA job's overhead: must be missed.
        job = DecodeJob(job_id=0, user_id=0, frame=0, subcarrier=0,
                        channel_use=link.transmit(random_state=1),
                        arrival_time_us=0.0, deadline_us=10.0, seed=1)
        telemetry = TelemetryRecorder()
        pool = WorkerPool(decoder, telemetry=telemetry)
        pool.submit(make_batch([job], flush_time_us=0.0))
        assert telemetry.deadline_misses == 1
        assert telemetry.deadline_miss_rate() == 1.0

    def test_queue_depth_samples(self):
        telemetry = TelemetryRecorder()
        telemetry.record_queue_depth(0.0, 3)
        telemetry.record_queue_depth(1.0, 7)
        assert telemetry.max_queue_depth() == 7
        assert telemetry.mean_queue_depth() == pytest.approx(5.0)

    def test_queue_depth_samples_respect_window(self):
        telemetry = TelemetryRecorder(window=2)
        for step in range(5):
            telemetry.record_queue_depth(float(step), step)
        # Rolling: only the last two samples survive.
        assert telemetry.max_queue_depth() == 4
        assert telemetry.mean_queue_depth() == pytest.approx(3.5)

    def test_empty_recorder_snapshot(self):
        snapshot = TelemetryRecorder().snapshot()
        assert snapshot["jobs_completed"] == 0
        assert snapshot["throughput_jobs_per_s"] == 0.0
        # Empty series report None, not NaN — the snapshot must stay
        # strict-JSON-safe (json.dumps(..., allow_nan=False)).
        assert snapshot["latency_us"]["mean"] is None
        assert snapshot["latency_us"]["p99"] is None
        assert snapshot["queue_delay_us_mean"] is None
        json.dumps(snapshot, allow_nan=False)


class TestDecodeTimeEwma:
    """Satellite: the recorder's online per-structure decode-time model."""

    def test_estimate_requires_min_samples(self, decoder, job_pool):
        telemetry = TelemetryRecorder(decode_time_min_samples=3)
        pool = WorkerPool(decoder, telemetry=telemetry)
        key = job_pool[0].structure_key
        pool.submit(make_batch(job_pool[:2], flush_time_us=0.0))
        assert telemetry.decode_time_us(key, 2) is None
        pool.submit(make_batch(job_pool[2:3], flush_time_us=10_000.0))
        assert telemetry.decode_time_us(key, 2) is None
        pool.submit(make_batch(job_pool[3:4], flush_time_us=20_000.0))
        estimate = telemetry.decode_time_us(key, 2)
        assert estimate is not None and estimate > 0.0
        # Unknown structures stay analytic-fallback territory.
        assert telemetry.decode_time_us((9, 9, "64QAM"), 2) is None

    def test_ewma_tracks_observed_service_and_size(self, decoder, job_pool):
        telemetry = TelemetryRecorder(decode_time_alpha=0.5,
                                      decode_time_min_samples=1)
        pool = WorkerPool(decoder, telemetry=telemetry)
        key = job_pool[0].structure_key
        pool.submit(make_batch(job_pool[:3], flush_time_us=0.0))
        first = pool.results()[0]
        service_us = first.finish_time_us - first.start_time_us
        # One observation: prediction reproduces the affine service model.
        overhead_us = decoder.annealer.overheads.total_us(
            first.result.run.num_anneals)
        per_job = (service_us - overhead_us) / 3.0
        expected_for_two = overhead_us + 2 * per_job
        assert telemetry.decode_time_us(key, 2, overhead_us=overhead_us) \
            == pytest.approx(expected_for_two)
        # Without the overhead split the estimate is the amortised scaling.
        assert telemetry.decode_time_us(key, 3) == pytest.approx(service_us)
        assert telemetry.snapshot()["decode_time_per_job_us"]

    def test_online_model_falls_back_then_takes_over(self):
        from repro.cran.service import online_decode_time_model

        telemetry = TelemetryRecorder(decode_time_min_samples=1)
        calls = []

        def fallback(key, size):
            calls.append((key, size))
            return 1_234.0

        model = online_decode_time_model(telemetry, fallback,
                                         overhead_us=100.0, margin=0.1)
        key = (3, 3, "QPSK")
        # No observations yet: analytic fallback.
        assert model(key, 2) == pytest.approx(1_234.0)
        assert calls == [(key, 2)]
        # Feed one observation directly through the recorder's EWMA state.
        telemetry._decode_service_ewma_us[key] = 1_100.0
        telemetry._decode_size_ewma[key] = 2.0
        telemetry._decode_time_samples[key] += 1
        # (1100 - 100) / 2 = 500 per job; pack of 3 -> 100 + 1500, x1.1.
        assert model(key, 3) == pytest.approx((100.0 + 3 * 500.0) * 1.1)
        assert len(calls) == 1

    def test_degenerate_overhead_split_returns_none(self):
        # Satellite regression: when the claimed overhead exceeds the
        # observed service EWMA the per-job split is negative.  Clamping it
        # to zero would make predictions size-independent (overhead + 0*n)
        # and starve the adaptive wait; the estimate must instead defer to
        # the analytic fallback.
        telemetry = TelemetryRecorder(decode_time_min_samples=1)
        key = (3, 3, "QPSK")
        telemetry._decode_service_ewma_us[key] = 1_100.0
        telemetry._decode_size_ewma[key] = 2.0
        telemetry._decode_time_samples[key] += 1
        assert telemetry.decode_time_us(key, 3, overhead_us=5_000.0) is None
        # The online wrapper then uses the fallback, never a flat estimate.
        from repro.cran.service import online_decode_time_model

        model = online_decode_time_model(telemetry, lambda k, n: 777.0,
                                         overhead_us=5_000.0)
        assert model(key, 3) == pytest.approx(777.0)
        # A sane overhead keeps the online estimate size-dependent.
        assert telemetry.decode_time_us(key, 3, overhead_us=100.0) \
            > telemetry.decode_time_us(key, 1, overhead_us=100.0)


class TestCranService:
    @pytest.fixture(scope="class")
    def traffic(self):
        trace = ArgosLikeTraceGenerator(
            num_bs_antennas=8, num_users=2,
            num_subcarriers=6).generate(num_frames=1, random_state=0)
        generator = PoissonTrafficGenerator(
            trace, modulations=("BPSK", "QPSK"),
            mean_interarrival_us=1_000.0, burst_subcarriers=2,
            deadline_us=500_000.0)
        return generator.generate(6, random_state=5)

    def test_serves_every_job(self, decoder, traffic):
        report = CranService(decoder, max_batch=4,
                             max_wait_us=5_000.0).run(traffic)
        assert report.jobs_completed == len(traffic)
        assert not report.shed_jobs
        assert [r.job.job_id for r in report.results] == sorted(
            job.job_id for job in traffic)
        assert report.wall_time_s > 0
        assert report.wall_jobs_per_s > 0
        assert report.telemetry["jobs_completed"] == len(traffic)
        assert report.telemetry["batches_decoded"] >= 1
        assert 0.0 <= report.bit_error_rate() <= 1.0

    def test_drain_phase_samples_queue_depth(self, decoder, traffic):
        # Satellite regression: with unbounded wait everything flushes at
        # drain, after the last arrival.  Depth must be sampled as the drain
        # empties the groups — ending at zero — not stop at the last
        # arrival's (maximal) backlog.
        report = CranService(decoder, max_batch=64,
                             max_wait_us=math.inf).run(traffic)
        assert report.jobs_completed == len(traffic)
        assert report.telemetry["queue_depth_max"] == len(traffic)
        # The mean reflects the tail draining to empty, so it sits strictly
        # below the peak backlog and the sample set includes a zero.
        assert (report.telemetry["queue_depth_mean"]
                < report.telemetry["queue_depth_max"])

    def test_session_matches_run(self, decoder, traffic):
        # The incremental session is the substrate of run(): feeding the
        # same load in arrival order must reproduce the report exactly.
        service = CranService(decoder, max_batch=4, max_wait_us=5_000.0)
        batch_report = service.run(traffic)
        session = service.session()
        assert not session.closed
        for job in sorted(traffic,
                          key=lambda j: (j.arrival_time_us, j.job_id)):
            session.submit(job)
        report = session.close()
        assert session.closed
        # close() is idempotent: the same report object comes back.
        assert session.close() is report
        assert report.jobs_completed == batch_report.jobs_completed
        for a, b in zip(batch_report.results, report.results):
            assert a.job.job_id == b.job.job_id
            assert a.flush_time_us == b.flush_time_us
            assert a.finish_time_us == b.finish_time_us
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)
        # The sampler-cache section reflects the shared decoder's warm-cache
        # state, so the second replay legitimately hits where the first
        # missed; everything the session itself accounts must match exactly.
        def scrub(telemetry):
            return {key: value for key, value in telemetry.items()
                    if key != "sampler_cache"}
        assert scrub(report.telemetry) == scrub(batch_report.telemetry)

    def test_deterministic_replay(self, decoder, traffic):
        service = CranService(decoder, max_batch=4, max_wait_us=5_000.0)
        first = service.run(traffic)
        second = service.run(traffic)
        for a, b in zip(first.results, second.results):
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)
            assert a.finish_time_us == b.finish_time_us
        assert (first.telemetry["latency_us"]["p99"]
                == second.telemetry["latency_us"]["p99"])

    def test_threaded_service_matches_inline_bits(self, decoder, traffic):
        inline = CranService(decoder, max_batch=4,
                             max_wait_us=5_000.0).run(traffic)
        threaded = CranService(decoder, max_batch=4, max_wait_us=5_000.0,
                               num_workers=2).run(traffic)
        assert threaded.jobs_completed == inline.jobs_completed
        for a, b in zip(inline.results, threaded.results):
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)

    def test_adaptive_service_uses_online_model(self, decoder, traffic):
        """Satellite: adaptive_wait serving stays deterministic and
        bit-identical with the online decode-time model in the loop."""
        fixed = CranService(decoder, max_batch=4,
                            max_wait_us=5_000.0).run(traffic)
        online_a = CranService(decoder, max_batch=4, max_wait_us=5_000.0,
                               adaptive_wait=True).run(traffic)
        online_b = CranService(decoder, max_batch=4, max_wait_us=5_000.0,
                               adaptive_wait=True).run(traffic)
        assert online_a.jobs_completed == fixed.jobs_completed
        for a, b, c in zip(fixed.results, online_a.results,
                           online_b.results):
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)
            # Inline serving is deterministic: two online runs agree on the
            # full timeline, not just the decodes.
            assert b.finish_time_us == c.finish_time_us
            assert b.flush_time_us == c.flush_time_us
            # The adaptive scheduler can only flush earlier, never later.
            assert b.flush_time_us <= a.flush_time_us + 1e-9
        assert online_a.telemetry["decode_time_per_job_us"]
