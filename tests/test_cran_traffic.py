"""Tests for the Poisson traffic generator and the DecodeJob model."""

import math

import numpy as np
import pytest

from repro.channel.trace import ArgosLikeTraceGenerator
from repro.cran.jobs import DecodeJob
from repro.cran.traffic import PoissonTrafficGenerator
from repro.exceptions import SchedulingError
from repro.mimo.system import MimoUplink


@pytest.fixture(scope="module")
def trace():
    return ArgosLikeTraceGenerator(num_bs_antennas=12, num_users=3,
                                   num_subcarriers=8).generate(
        num_frames=2, random_state=0)


@pytest.fixture(scope="module")
def jobs(trace):
    generator = PoissonTrafficGenerator(
        trace, modulations={"BPSK": 0.5, "QPSK": 0.5},
        mean_interarrival_us=1_000.0, burst_subcarriers=3,
        user_snrs_db=(15.0, 20.0, 25.0), deadline_us=50_000.0)
    return generator.generate(8, random_state=42)


class TestDecodeJob:
    def test_validation(self, trace):
        use = MimoUplink(num_users=3, constellation="BPSK").transmit(
            random_state=0)
        with pytest.raises(SchedulingError):
            DecodeJob(job_id=0, user_id=0, frame=0, subcarrier=0,
                      channel_use=use, arrival_time_us=-1.0)
        with pytest.raises(SchedulingError):
            DecodeJob(job_id=0, user_id=0, frame=0, subcarrier=0,
                      channel_use=use, arrival_time_us=10.0, deadline_us=5.0)

    def test_omitted_seed_falls_back_to_job_id(self):
        use = MimoUplink(num_users=2, constellation="BPSK").transmit(
            random_state=0)
        job = DecodeJob(job_id=17, user_id=0, frame=0, subcarrier=0,
                        channel_use=use, arrival_time_us=0.0)
        # Replayability even without an explicit seed: the stream derives
        # from the (unique) job id, never from OS entropy.
        assert job.seed == 17
        assert job.rng().integers(1 << 20) == job.rng().integers(1 << 20)

    def test_structure_key_and_rng(self):
        use = MimoUplink(num_users=3, constellation="QPSK").transmit(
            random_state=0)
        job = DecodeJob(job_id=1, user_id=0, frame=0, subcarrier=2,
                        channel_use=use, arrival_time_us=5.0, seed=99)
        assert job.structure_key == (3, 3, "QPSK")
        assert job.modulation == "QPSK"
        assert job.laxity_us == math.inf
        # rng() restarts the stream every call — that is what makes the job
        # decodable in any batch.
        assert job.rng().integers(1 << 20) == job.rng().integers(1 << 20)


class TestPoissonTrafficGenerator:
    def test_burst_structure(self, jobs):
        assert len(jobs) == 8 * 3
        assert [job.job_id for job in jobs] == list(range(24))
        for start in range(0, 24, 3):
            burst = jobs[start:start + 3]
            # One arrival instant, one user, one frame, distinct subcarriers.
            assert len({job.arrival_time_us for job in burst}) == 1
            assert len({job.user_id for job in burst}) == 1
            assert len({job.frame for job in burst}) == 1
            subcarriers = [job.subcarrier for job in burst]
            assert sorted(set(subcarriers)) == subcarriers

    def test_arrivals_strictly_ordered_across_bursts(self, jobs):
        arrivals = [jobs[start].arrival_time_us for start in range(0, 24, 3)]
        assert all(a < b for a, b in zip(arrivals, arrivals[1:]))
        assert all(job.arrival_time_us > 0 for job in jobs)

    def test_deadlines_relative_to_arrival(self, jobs):
        for job in jobs:
            assert job.deadline_us == job.arrival_time_us + 50_000.0

    def test_per_user_snr(self, jobs):
        snrs = (15.0, 20.0, 25.0)
        for job in jobs:
            assert job.channel_use.snr_db == snrs[job.user_id]

    def test_requested_modulation_mix_only(self, jobs):
        assert {job.modulation for job in jobs} <= {"BPSK", "QPSK"}

    def test_ground_truth_carried(self, jobs):
        for job in jobs:
            assert job.channel_use.transmitted_bits is not None

    def test_seeds_distinct(self, jobs):
        seeds = [job.seed for job in jobs]
        assert len(set(seeds)) == len(seeds)

    def test_chained_generate_calls_keep_ids_unique(self, trace):
        generator = PoissonTrafficGenerator(
            trace, modulations=("BPSK",), mean_interarrival_us=500.0,
            burst_subcarriers=2)
        first = generator.generate(2, random_state=1)
        second = generator.generate(
            2, random_state=2, start_time_us=first[-1].arrival_time_us)
        ids = [job.job_id for job in first + second]
        assert ids == list(range(8))

    def test_deterministic_regeneration(self, trace):
        # Bit-identical replay from one seed needs a fresh generator per
        # replay: re-running generate on a *used* generator would rewind the
        # arrival clock, which the monotonic-chaining contract rejects.
        def fresh():
            return PoissonTrafficGenerator(
                trace, modulations=("BPSK",), mean_interarrival_us=500.0,
                burst_subcarriers=2)

        a = fresh().generate(4, random_state=3)
        b = fresh().generate(4, random_state=3)
        assert [j.seed for j in a] == [j.seed for j in b]
        assert [j.arrival_time_us for j in a] == [j.arrival_time_us for j in b]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.channel_use.received,
                                          y.channel_use.received)
            np.testing.assert_array_equal(x.channel_use.transmitted_bits,
                                          y.channel_use.transmitted_bits)

    def test_rewinding_start_time_rejected(self, trace):
        generator = PoissonTrafficGenerator(
            trace, modulations=("BPSK",), mean_interarrival_us=500.0,
            burst_subcarriers=2)
        first = generator.generate(3, random_state=1)
        # Restarting earlier than an already-emitted arrival would interleave
        # new (higher-id) jobs before old ones in arrival order.
        with pytest.raises(SchedulingError, match="precedes the last"):
            generator.generate(1, random_state=2,
                               start_time_us=first[0].arrival_time_us)
        with pytest.raises(SchedulingError, match="precedes the last"):
            generator.generate(1, random_state=2)
        # Resuming exactly at the last arrival stays legal, and the
        # concatenation is arrival-ordered.
        second = generator.generate(
            2, random_state=2, start_time_us=first[-1].arrival_time_us)
        arrivals = [j.arrival_time_us for j in first + second]
        assert arrivals == sorted(arrivals)

    def test_offered_load(self, trace):
        generator = PoissonTrafficGenerator(trace, modulations="BPSK",
                                            mean_interarrival_us=1_000.0,
                                            burst_subcarriers=4)
        assert generator.offered_load_jobs_per_s == pytest.approx(4_000.0)

    def test_single_modulation_string_accepted(self, trace):
        generator = PoissonTrafficGenerator(trace, modulations="QPSK",
                                            burst_subcarriers=1)
        assert all(job.modulation == "QPSK"
                   for job in generator.generate(3, random_state=0))

    def test_invalid_configuration_rejected(self, trace):
        with pytest.raises(SchedulingError):
            PoissonTrafficGenerator(np.zeros((2, 2)))
        with pytest.raises(SchedulingError):
            PoissonTrafficGenerator(trace, modulations={})
        with pytest.raises(SchedulingError):
            PoissonTrafficGenerator(trace, modulations={"BPSK": -1.0})
        with pytest.raises(SchedulingError):
            PoissonTrafficGenerator(trace, user_snrs_db=(1.0, 2.0))
        with pytest.raises(Exception):
            PoissonTrafficGenerator(trace, deadline_us=0.0)
        with pytest.raises(Exception):
            PoissonTrafficGenerator(trace, burst_subcarriers=99)
