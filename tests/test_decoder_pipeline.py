"""Tests for the OFDM decoding pipeline."""

import numpy as np
import pytest

from repro.annealer.chimera import ChimeraGraph
from repro.annealer.ice import ICEModel
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.decoder.pipeline import OFDMDecodingPipeline, PipelineReport
from repro.decoder.quamax import QuAMaxDecoder
from repro.exceptions import ConfigurationError, DetectionError
from repro.mimo.system import ChannelUse, MimoUplink
from repro.modulation import QPSK


@pytest.fixture(scope="module")
def pipeline():
    machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4),
                                       ice=ICEModel.disabled())
    decoder = QuAMaxDecoder(machine, AnnealerParameters(num_anneals=20),
                            random_state=0)
    return OFDMDecodingPipeline(decoder)


def make_channel_uses(count, num_users=3, constellation="QPSK", seed=0):
    link = MimoUplink(num_users=num_users, constellation=constellation)
    rng = np.random.default_rng(seed)
    return [link.transmit(random_state=rng) for _ in range(count)]


class TestDecodeSubcarriers:
    def test_all_subcarriers_decoded(self, pipeline):
        channel_uses = make_channel_uses(3)
        report = pipeline.decode_subcarriers(channel_uses, random_state=1)
        assert isinstance(report, PipelineReport)
        assert report.num_subcarriers == 3
        assert report.total_compute_time_us > 0

    def test_noiseless_pipeline_has_zero_ber(self, pipeline):
        channel_uses = make_channel_uses(3, seed=1)
        report = pipeline.decode_subcarriers(channel_uses, random_state=2)
        assert report.total_bit_errors == 0
        assert report.bit_error_rate() == 0.0

    def test_empty_input_rejected(self, pipeline):
        with pytest.raises(DetectionError):
            pipeline.decode_subcarriers([])

    def test_missing_ground_truth_gives_none_ber(self, pipeline):
        channel_use = make_channel_uses(1)[0]
        anonymous = ChannelUse(channel=channel_use.channel,
                               received=channel_use.received,
                               constellation=QPSK)
        report = pipeline.decode_subcarriers([anonymous], random_state=0)
        assert report.total_bit_errors is None
        assert report.bit_error_rate() is None

    def test_subcarrier_indices_recorded(self, pipeline):
        channel_uses = make_channel_uses(4, seed=2)
        report = pipeline.decode_subcarriers(channel_uses, random_state=3)
        assert [r.subcarrier for r in report.subcarrier_results] == [0, 1, 2, 3]


class TestDecodeSubcarriersBatched:
    def test_batched_report_matches_serial(self, pipeline):
        channel_uses = make_channel_uses(4, seed=7)
        serial = pipeline.decode_subcarriers(channel_uses, random_state=5)
        batched = pipeline.decode_subcarriers_batched(channel_uses,
                                                      random_state=5)
        assert batched.num_subcarriers == serial.num_subcarriers
        assert batched.total_bit_errors == serial.total_bit_errors
        for a, b in zip(serial.subcarrier_results, batched.subcarrier_results):
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)

    def test_batched_noiseless_zero_ber(self, pipeline):
        channel_uses = make_channel_uses(3, seed=8)
        report = pipeline.decode_subcarriers_batched(channel_uses,
                                                     random_state=1)
        assert report.total_bit_errors == 0

    def test_batched_empty_input_rejected(self, pipeline):
        with pytest.raises(DetectionError):
            pipeline.decode_subcarriers_batched([])


class CountingDecoder:
    """Decoder stub that counts decode work while delegating to the real one."""

    def __init__(self, inner):
        self.inner = inner
        self.batch_calls = 0
        self.uses_decoded = 0

    def detect_batch(self, channel_uses, **kwargs):
        self.batch_calls += 1
        self.uses_decoded += len(channel_uses)
        return self.inner.detect_batch(channel_uses, **kwargs)

    def detect_with_run(self, channel_use, **kwargs):
        self.uses_decoded += 1
        return self.inner.detect_with_run(channel_use, **kwargs)


class TestChunkedFrameDecode:
    """Chunked batched decode_frame: early exit and accounting parity."""

    def _counting_pipeline(self, pipeline):
        counter = CountingDecoder(pipeline.decoder)
        return OFDMDecodingPipeline(counter), counter

    def test_early_exit_skips_remaining_chunks(self, pipeline):
        # 3 users x 2 bits = 6 bits per use; a 3-byte frame completes after
        # 4 uses, so chunks of 2 need exactly 2 batch submissions.
        channel_uses = make_channel_uses(10, seed=9)
        counting, counter = self._counting_pipeline(pipeline)
        result = counting.decode_frame(channel_uses, frame_size_bytes=3,
                                       random_state=12, batched=True,
                                       chunk_size=2)
        assert result.is_complete
        assert counter.batch_calls == 2
        assert counter.uses_decoded == 4
        assert result.num_decoded == 4

    def test_unchunked_batched_decodes_everything(self, pipeline):
        channel_uses = make_channel_uses(10, seed=9)
        counting, counter = self._counting_pipeline(pipeline)
        result = counting.decode_frame(channel_uses, frame_size_bytes=3,
                                       random_state=12, batched=True)
        assert counter.batch_calls == 1
        assert counter.uses_decoded == 10
        assert result.num_decoded == 10

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 5, 10])
    def test_accounting_identical_to_serial(self, pipeline, chunk_size):
        channel_uses = make_channel_uses(10, seed=10)
        serial = pipeline.decode_frame(channel_uses, frame_size_bytes=3,
                                       random_state=13)
        chunked = pipeline.decode_frame(channel_uses, frame_size_bytes=3,
                                        random_state=13, batched=True,
                                        chunk_size=chunk_size)
        assert chunked.bits_accumulated == serial.bits_accumulated
        assert chunked.bit_errors() == serial.bit_errors()
        assert chunked.bit_error_rate() == serial.bit_error_rate()
        assert chunked.total_compute_time_us == serial.total_compute_time_us
        assert (len(chunked.subcarrier_results)
                == len(serial.subcarrier_results))
        for a, b in zip(serial.subcarrier_results, chunked.subcarrier_results):
            assert a.subcarrier == b.subcarrier
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)
        # Chunking may only overshoot in whole chunks past the serial count.
        assert chunked.num_decoded >= serial.num_decoded
        assert chunked.num_decoded - serial.num_decoded < chunk_size

    def test_chunk_size_requires_batched(self, pipeline):
        channel_uses = make_channel_uses(2, seed=11)
        with pytest.raises(DetectionError):
            pipeline.decode_frame(channel_uses, frame_size_bytes=1,
                                  random_state=0, chunk_size=2)
        with pytest.raises(DetectionError):
            pipeline.decode_frame(channel_uses, frame_size_bytes=1,
                                  random_state=0, chunk_size="auto")

    def test_invalid_chunk_size_rejected(self, pipeline):
        channel_uses = make_channel_uses(2, seed=11)
        with pytest.raises(ConfigurationError):
            pipeline.decode_frame(channel_uses, frame_size_bytes=1,
                                  random_state=0, batched=True, chunk_size=0)


class TestAutoChunkedFrameDecode:
    """chunk_size="auto": adaptive sizing from the running decode estimate."""

    def test_auto_lands_on_serial_exit_in_one_submission(self, pipeline):
        # 3 users x 2 bits = 6 bits per use; a 3-byte frame needs exactly 4
        # uses, and the running estimate knows that before the first chunk.
        channel_uses = make_channel_uses(10, seed=9)
        counter = CountingDecoder(pipeline.decoder)
        counting = OFDMDecodingPipeline(counter)
        result = counting.decode_frame(channel_uses, frame_size_bytes=3,
                                       random_state=12, batched=True,
                                       chunk_size="auto")
        assert result.is_complete
        assert counter.batch_calls == 1
        assert counter.uses_decoded == 4
        assert result.num_decoded == 4

    def test_auto_matches_serial_work_exactly(self, pipeline):
        channel_uses = make_channel_uses(10, seed=10)
        serial = pipeline.decode_frame(channel_uses, frame_size_bytes=3,
                                       random_state=13)
        auto = pipeline.decode_frame(channel_uses, frame_size_bytes=3,
                                     random_state=13, batched=True,
                                     chunk_size="auto")
        # Fixed-size chunking may overshoot by up to a chunk; auto must not
        # overshoot at all (this is the fixed-chunk efficiency gap closing).
        assert auto.num_decoded == serial.num_decoded
        assert auto.bits_accumulated == serial.bits_accumulated
        assert auto.bit_errors() == serial.bit_errors()
        assert auto.total_compute_time_us == serial.total_compute_time_us
        for a, b in zip(serial.subcarrier_results, auto.subcarrier_results):
            assert a.subcarrier == b.subcarrier
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)

    def test_auto_estimate_walks_actual_payload_sizes(self, pipeline):
        # A frame larger than the remaining channel uses: the estimate caps
        # at the available uses and decodes them all in one submission.
        channel_uses = make_channel_uses(3, seed=12)
        counter = CountingDecoder(pipeline.decoder)
        counting = OFDMDecodingPipeline(counter)
        result = counting.decode_frame(channel_uses, frame_size_bytes=50,
                                       random_state=14, batched=True,
                                       chunk_size="auto")
        assert not result.is_complete
        assert counter.batch_calls == 1
        assert result.num_decoded == 3

    def test_auto_chunk_size_helper(self):
        channel_uses = make_channel_uses(5, seed=13)  # 6 bits per use
        estimate = OFDMDecodingPipeline._auto_chunk_size
        assert estimate(channel_uses, 0, 24) == 4
        assert estimate(channel_uses, 0, 25) == 5
        assert estimate(channel_uses, 3, 6) == 1
        assert estimate(channel_uses, 0, 999) == 5  # capped at what is left
        assert estimate(channel_uses, 4, 1) == 1


class TestDecodeFrame:
    def test_frame_decodes_without_errors(self, pipeline):
        # 3 users x 2 bits = 6 bits per channel use; a 3-byte frame needs 4 uses.
        channel_uses = make_channel_uses(6, seed=3)
        frame = pipeline.decode_frame(channel_uses, frame_size_bytes=3,
                                      random_state=4)
        assert frame.is_complete
        assert not frame.is_errored()

    def test_frame_requires_ground_truth(self, pipeline):
        channel_use = make_channel_uses(1)[0]
        anonymous = ChannelUse(channel=channel_use.channel,
                               received=channel_use.received,
                               constellation=QPSK)
        with pytest.raises(DetectionError):
            pipeline.decode_frame([anonymous], frame_size_bytes=1)

    def test_frame_stops_once_complete(self, pipeline):
        channel_uses = make_channel_uses(10, seed=5)
        frame = pipeline.decode_frame(channel_uses, frame_size_bytes=1,
                                      random_state=6)
        # 8 frame bits need two 6-bit channel uses; accumulation stops there.
        assert frame.bits_accumulated <= 12

    def test_default_decoder_constructed_lazily(self):
        pipeline = OFDMDecodingPipeline()
        assert isinstance(pipeline.decoder, QuAMaxDecoder)
