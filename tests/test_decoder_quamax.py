"""Tests for the end-to-end QuAMax decoder."""

import numpy as np
import pytest

from repro.annealer.chimera import ChimeraGraph
from repro.annealer.ice import ICEModel
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.annealer.schedule import AnnealSchedule
from repro.decoder.quamax import QuAMaxDecoder, QuAMaxDetectionResult
from repro.detectors.base import DetectionResult
from repro.detectors.ml import ExhaustiveMLDetector
from repro.exceptions import DetectionError
from repro.metrics.ttb import InstanceSolutionProfile
from repro.mimo.system import MimoUplink


@pytest.fixture(scope="module")
def quiet_machine():
    """A small, noise-free machine for exact-decoding assertions."""
    return QuantumAnnealerSimulator(ChimeraGraph.ideal(6, 6),
                                    ice=ICEModel.disabled())


@pytest.fixture(scope="module")
def noisy_machine():
    """A small machine with the paper's ICE statistics."""
    return QuantumAnnealerSimulator(ChimeraGraph.ideal(6, 6))


class TestQuAMaxDecoding:
    @pytest.mark.parametrize("constellation,num_users", [
        ("BPSK", 8), ("QPSK", 4), ("16-QAM", 2),
    ])
    def test_noise_free_machine_decodes_noiseless_channel(self, quiet_machine,
                                                          constellation,
                                                          num_users):
        link = MimoUplink(num_users=num_users, constellation=constellation)
        channel_use = link.transmit(random_state=1)
        decoder = QuAMaxDecoder(
            quiet_machine,
            AnnealerParameters(schedule=AnnealSchedule(1.0, 1.0), num_anneals=40),
            random_state=0)
        result = decoder.detect(channel_use)
        np.testing.assert_array_equal(result.bits, channel_use.transmitted_bits)

    def test_matches_ml_detector_under_awgn(self, quiet_machine):
        link = MimoUplink(num_users=4, constellation="QPSK")
        channel_use = link.transmit(snr_db=12.0, random_state=2)
        decoder = QuAMaxDecoder(
            quiet_machine,
            AnnealerParameters(schedule=AnnealSchedule(2.0, 2.0), num_anneals=60),
            random_state=0)
        quamax = decoder.detect(channel_use)
        ml = ExhaustiveMLDetector().detect(channel_use)
        np.testing.assert_array_equal(quamax.bits, ml.bits)
        assert quamax.metric == pytest.approx(ml.metric, rel=1e-9)

    def test_detect_with_run_exposes_statistics(self, noisy_machine):
        link = MimoUplink(num_users=6, constellation="BPSK")
        channel_use = link.transmit(random_state=3)
        decoder = QuAMaxDecoder(noisy_machine,
                                AnnealerParameters(num_anneals=25),
                                random_state=1)
        outcome = decoder.detect_with_run(channel_use)
        assert isinstance(outcome, QuAMaxDetectionResult)
        assert isinstance(outcome.detection, DetectionResult)
        assert outcome.detection.detector == "quamax"
        assert outcome.run.num_anneals == 25
        assert 0 <= outcome.ground_state_probability <= 1
        assert outcome.compute_time_us > 0
        extra = outcome.detection.extra
        assert extra["num_anneals"] == 25
        assert "broken_chain_fraction" in extra

    def test_solution_profile_usable_for_ttb(self, noisy_machine):
        link = MimoUplink(num_users=6, constellation="BPSK")
        channel_use = link.transmit(random_state=4)
        decoder = QuAMaxDecoder(noisy_machine,
                                AnnealerParameters(num_anneals=30),
                                random_state=2)
        outcome = decoder.detect_with_run(channel_use)
        profile = outcome.solution_profile()
        assert isinstance(profile, InstanceSolutionProfile)
        assert profile.num_bits == channel_use.num_bits
        assert np.isfinite(profile.expected_ber(10))

    def test_deterministic_given_seed(self, noisy_machine):
        link = MimoUplink(num_users=4, constellation="QPSK")
        channel_use = link.transmit(snr_db=20.0, random_state=5)
        parameters = AnnealerParameters(num_anneals=15)
        first = QuAMaxDecoder(noisy_machine, parameters).detect_with_run(
            channel_use, random_state=9)
        second = QuAMaxDecoder(noisy_machine, parameters).detect_with_run(
            channel_use, random_state=9)
        np.testing.assert_array_equal(first.detection.bits, second.detection.bits)
        assert first.run.best_energy == second.run.best_energy

    def test_per_call_parameter_override(self, noisy_machine):
        link = MimoUplink(num_users=4, constellation="BPSK")
        channel_use = link.transmit(random_state=6)
        decoder = QuAMaxDecoder(noisy_machine,
                                AnnealerParameters(num_anneals=10))
        outcome = decoder.detect_with_run(
            channel_use, parameters=AnnealerParameters(num_anneals=7))
        assert outcome.run.num_anneals == 7

    def test_rejects_wide_channel(self, noisy_machine):
        from repro.mimo.system import ChannelUse
        from repro.modulation import QPSK
        wide = ChannelUse(channel=np.ones((2, 3), dtype=complex),
                          received=np.zeros(2, dtype=complex),
                          constellation=QPSK)
        decoder = QuAMaxDecoder(noisy_machine)
        with pytest.raises(DetectionError):
            decoder.detect(wide)

    def test_gray_mapping_for_16qam_end_to_end(self, quiet_machine):
        # The decoded bits must already be Gray-translated, i.e. equal to the
        # transmitter's bits, not the raw QUBO labels.
        link = MimoUplink(num_users=2, constellation="16-QAM")
        channel_use = link.transmit(random_state=7)
        decoder = QuAMaxDecoder(
            quiet_machine,
            AnnealerParameters(schedule=AnnealSchedule(2.0, 2.0), num_anneals=60),
            random_state=3)
        result = decoder.detect(channel_use)
        np.testing.assert_array_equal(result.bits, channel_use.transmitted_bits)


class TestKernelKnob:
    """The kernel= knob pins the sampler's sweep kernel from the decoder."""

    def test_invalid_kernel_rejected_at_construction(self):
        with pytest.raises(DetectionError):
            QuAMaxDecoder(kernel="simd")

    def test_repr_reports_kernel(self, quiet_machine):
        assert "kernel='colour'" in repr(QuAMaxDecoder(quiet_machine,
                                                       kernel="colour"))

    def test_pinned_colour_matches_auto_on_embedded_problems(self,
                                                             noisy_machine):
        # Embedded problems are sparse, so auto dispatches the colour kernel;
        # pinning it explicitly must therefore reproduce the same stream.
        link = MimoUplink(num_users=4, constellation="QPSK")
        channel_use = link.transmit(snr_db=18.0, random_state=11)
        parameters = AnnealerParameters(num_anneals=12)
        auto = QuAMaxDecoder(noisy_machine, parameters).detect_with_run(
            channel_use, random_state=21)
        pinned = QuAMaxDecoder(noisy_machine, parameters,
                               kernel="colour").detect_with_run(
            channel_use, random_state=21)
        np.testing.assert_array_equal(auto.detection.bits,
                                      pinned.detection.bits)
        np.testing.assert_array_equal(auto.run.solutions.samples,
                                      pinned.run.solutions.samples)

    def test_dense_kernel_decodes_correctly(self, quiet_machine):
        # Forcing the dense sequential kernel is a different (equally exact)
        # sampler; on a noise-free machine it still decodes the noiseless
        # channel use perfectly.
        link = MimoUplink(num_users=4, constellation="BPSK")
        channel_use = link.transmit(random_state=12)
        decoder = QuAMaxDecoder(
            quiet_machine,
            AnnealerParameters(schedule=AnnealSchedule(1.0, 1.0),
                               num_anneals=40),
            kernel="dense")
        result = decoder.detect(channel_use)
        np.testing.assert_array_equal(result.bits,
                                      channel_use.transmitted_bits)

    def test_kernel_reaches_batched_path(self, noisy_machine):
        link = MimoUplink(num_users=3, constellation="QPSK")
        rng = np.random.default_rng(13)
        channel_uses = [link.transmit(random_state=rng) for _ in range(3)]
        parameters = AnnealerParameters(num_anneals=10)
        auto = QuAMaxDecoder(noisy_machine, parameters).detect_batch(
            channel_uses, random_state=31)
        pinned = QuAMaxDecoder(noisy_machine, parameters,
                               kernel="colour").detect_batch(
            channel_uses, random_state=31)
        for a, b in zip(auto, pinned):
            np.testing.assert_array_equal(a.detection.bits, b.detection.bits)
