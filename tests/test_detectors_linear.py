"""Tests for repro.detectors.linear (zero-forcing and MMSE)."""

import numpy as np
import pytest

from repro.channel.models import RayleighChannel
from repro.detectors.base import DetectionResult
from repro.detectors.linear import MMSEDetector, ZeroForcingDetector
from repro.detectors.ml import ExhaustiveMLDetector
from repro.exceptions import DetectionError
from repro.mimo.system import MimoUplink


class TestZeroForcing:
    def test_perfect_on_noiseless_identity_channel(self):
        link = MimoUplink(num_users=3, constellation="QPSK")
        channel_use = link.transmit(channel=np.eye(3, dtype=complex),
                                    random_state=0)
        result = ZeroForcingDetector().detect(channel_use)
        np.testing.assert_array_equal(result.bits, channel_use.transmitted_bits)
        assert result.metric == pytest.approx(0.0, abs=1e-20)

    def test_perfect_on_noiseless_random_channel(self):
        link = MimoUplink(num_users=4, constellation="16-QAM")
        channel_use = link.transmit(random_state=1)
        result = ZeroForcingDetector().detect(channel_use)
        np.testing.assert_array_equal(result.bits, channel_use.transmitted_bits)

    def test_result_fields(self):
        link = MimoUplink(num_users=2, constellation="BPSK")
        channel_use = link.transmit(snr_db=20.0, random_state=2)
        result = ZeroForcingDetector().detect(channel_use)
        assert isinstance(result, DetectionResult)
        assert result.detector == "zero-forcing"
        assert result.symbols.shape == (2,)
        assert result.bits.shape == (2,)
        assert "equalized" in result.extra

    def test_rejects_wide_channel(self):
        link = MimoUplink(num_users=2, constellation="BPSK", num_rx_antennas=4)
        channel_use = link.transmit(random_state=0)
        # Manually build a wide (under-determined) channel use.
        from repro.mimo.system import ChannelUse
        wide = ChannelUse(channel=channel_use.channel.T.copy(),
                          received=np.zeros(2, dtype=complex),
                          constellation=channel_use.constellation)
        with pytest.raises(DetectionError):
            ZeroForcingDetector().detect(wide)

    def test_degrades_at_low_snr_square_channel(self):
        # The paper's Fig. 14 premise: ZF has an error floor when Nt ~= Nr.
        link = MimoUplink(num_users=8, constellation="QPSK")
        detector = ZeroForcingDetector()
        errors, total = 0, 0
        rng = np.random.default_rng(3)
        for _ in range(20):
            channel_use = link.transmit(snr_db=10.0, random_state=rng)
            result = detector.detect(channel_use)
            errors += result.bit_errors(channel_use.transmitted_bits)
            total += channel_use.num_bits
        assert errors / total > 0.01


class TestMMSE:
    def test_reduces_to_zf_without_noise(self):
        link = MimoUplink(num_users=3, constellation="QPSK")
        channel_use = link.transmit(random_state=4)
        zf = ZeroForcingDetector().detect(channel_use)
        mmse = MMSEDetector().detect(channel_use)
        np.testing.assert_array_equal(zf.bits, mmse.bits)

    def test_not_worse_than_zf_at_low_snr(self):
        link = MimoUplink(num_users=6, constellation="QPSK")
        rng = np.random.default_rng(5)
        zf_errors, mmse_errors = 0, 0
        for _ in range(30):
            channel_use = link.transmit(snr_db=8.0, random_state=rng)
            zf_errors += ZeroForcingDetector().detect(channel_use).bit_errors(
                channel_use.transmitted_bits)
            mmse_errors += MMSEDetector().detect(channel_use).bit_errors(
                channel_use.transmitted_bits)
        assert mmse_errors <= zf_errors

    def test_detector_name(self):
        link = MimoUplink(num_users=2, constellation="BPSK")
        result = MMSEDetector().detect(link.transmit(snr_db=15.0, random_state=0))
        assert result.detector == "mmse"


class TestDetectionResult:
    def test_bit_error_helpers(self):
        result = DetectionResult(symbols=np.array([1 + 0j]), bits=np.array([1, 0]),
                                 metric=0.0, detector="test")
        assert result.bit_errors([1, 1]) == 1
        assert result.bit_error_rate([1, 1]) == 0.5
        assert result.bit_error_rate([1, 0]) == 0.0

    def test_euclidean_metric_matches_definition(self):
        link = MimoUplink(num_users=2, constellation="QPSK")
        channel_use = link.transmit(snr_db=20.0, random_state=6)
        detector = ZeroForcingDetector()
        result = detector.detect(channel_use)
        manual = np.linalg.norm(
            channel_use.received - channel_use.channel @ result.symbols) ** 2
        assert result.metric == pytest.approx(manual)
