"""Tests for the exhaustive ML detector and the Sphere Decoder."""

import numpy as np
import pytest

from repro.channel.models import RayleighChannel
from repro.detectors.ml import ExhaustiveMLDetector
from repro.detectors.sphere import SphereDecoder, SphereDecoderStats
from repro.exceptions import DetectionError
from repro.mimo.system import MimoUplink


def make_channel_use(num_users, constellation, snr_db, seed):
    link = MimoUplink(num_users=num_users, constellation=constellation)
    return link.transmit(snr_db=snr_db, random_state=seed)


class TestExhaustiveML:
    def test_candidate_count(self):
        channel_use = make_channel_use(3, "QPSK", 20.0, 0)
        assert ExhaustiveMLDetector().candidate_count(channel_use) == 64

    def test_recovers_bits_at_high_snr(self):
        channel_use = make_channel_use(3, "QPSK", 30.0, 1)
        result = ExhaustiveMLDetector().detect(channel_use)
        np.testing.assert_array_equal(result.bits, channel_use.transmitted_bits)

    def test_noiseless_metric_is_zero(self):
        channel_use = make_channel_use(2, "16-QAM", None, 2)
        result = ExhaustiveMLDetector().detect(channel_use)
        assert result.metric == pytest.approx(0.0, abs=1e-18)

    def test_candidate_limit_enforced(self):
        channel_use = make_channel_use(8, "16-QAM", 20.0, 3)
        detector = ExhaustiveMLDetector(max_candidates=1000)
        with pytest.raises(DetectionError):
            detector.detect(channel_use)

    def test_metric_is_global_minimum(self):
        channel_use = make_channel_use(2, "QPSK", 10.0, 4)
        result = ExhaustiveMLDetector().detect(channel_use)
        constellation = channel_use.constellation
        rng = np.random.default_rng(0)
        for _ in range(50):
            candidate = rng.choice(constellation.points, size=2)
            metric = np.linalg.norm(
                channel_use.received - channel_use.channel @ candidate) ** 2
            assert metric >= result.metric - 1e-9


class TestSphereDecoder:
    @pytest.mark.parametrize("constellation,num_users", [
        ("BPSK", 6), ("QPSK", 4), ("16-QAM", 2),
    ])
    def test_matches_exhaustive_ml(self, constellation, num_users):
        for seed in range(4):
            channel_use = make_channel_use(num_users, constellation, 12.0, seed)
            sphere = SphereDecoder().detect(channel_use)
            exact = ExhaustiveMLDetector().detect(channel_use)
            assert sphere.metric == pytest.approx(exact.metric, rel=1e-9)
            np.testing.assert_array_equal(sphere.bits, exact.bits)

    def test_visited_nodes_reported(self):
        channel_use = make_channel_use(4, "QPSK", 15.0, 0)
        decoder = SphereDecoder()
        result = decoder.detect(channel_use)
        assert result.extra["visited_nodes"] > 0
        assert decoder.last_stats.visited_nodes == result.extra["visited_nodes"]
        assert decoder.last_stats.leaves_reached >= 1
        assert decoder.last_stats.final_radius == pytest.approx(result.metric)

    def test_visited_nodes_fewer_than_exhaustive(self):
        channel_use = make_channel_use(6, "QPSK", 15.0, 1)
        result = SphereDecoder().detect(channel_use)
        assert result.extra["visited_nodes"] < 4 ** 6

    def test_complexity_grows_with_users(self):
        # The Table 1 phenomenon: node counts blow up with system size.
        def mean_nodes(num_users):
            counts = []
            for seed in range(5):
                channel_use = make_channel_use(num_users, "BPSK", 13.0, seed)
                counts.append(SphereDecoder().detect(
                    channel_use).extra["visited_nodes"])
            return np.mean(counts)

        assert mean_nodes(12) < mean_nodes(20)

    def test_node_budget_enforced(self):
        channel_use = make_channel_use(10, "QPSK", 5.0, 2)
        decoder = SphereDecoder(max_visited_nodes=5)
        with pytest.raises(DetectionError):
            decoder.detect(channel_use)

    def test_initial_radius_too_small_raises(self):
        channel_use = make_channel_use(3, "QPSK", 20.0, 3)
        decoder = SphereDecoder(initial_radius=1e-15)
        with pytest.raises(DetectionError):
            decoder.detect(channel_use)

    def test_initial_radius_large_enough_succeeds(self):
        channel_use = make_channel_use(3, "QPSK", 20.0, 3)
        unbounded = SphereDecoder().detect(channel_use)
        bounded = SphereDecoder(initial_radius=unbounded.metric * 2 + 1.0).detect(
            channel_use)
        np.testing.assert_array_equal(bounded.bits, unbounded.bits)

    def test_invalid_parameters(self):
        with pytest.raises(DetectionError):
            SphereDecoder(initial_radius=-1.0)
        with pytest.raises(DetectionError):
            SphereDecoder(max_visited_nodes=0)

    def test_stats_reset(self):
        stats = SphereDecoderStats(visited_nodes=5, leaves_reached=2,
                                   pruned_nodes=3, final_radius=1.0)
        stats.reset()
        assert stats.visited_nodes == 0
        assert stats.final_radius == float("inf")

    def test_tall_channel_supported(self):
        link = MimoUplink(num_users=3, constellation="QPSK", num_rx_antennas=6)
        channel_use = link.transmit(snr_db=15.0, random_state=0)
        sphere = SphereDecoder().detect(channel_use)
        exact = ExhaustiveMLDetector().detect(channel_use)
        assert sphere.metric == pytest.approx(exact.metric, rel=1e-9)
