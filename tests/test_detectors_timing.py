"""Tests for repro.detectors.timing."""

import pytest

from repro.detectors.timing import (
    ClassicalTimingModel,
    sphere_decoder_flops_per_node,
    sphere_decoder_time_us,
    zero_forcing_flops,
    zero_forcing_time_us,
)
from repro.exceptions import ConfigurationError


class TestClassicalTimingModel:
    def test_time_scales_with_flops(self):
        model = ClassicalTimingModel(effective_gflops=1.0)
        assert model.time_us(1e9) == pytest.approx(1e6)
        assert model.time_us(2e9) == pytest.approx(2e6)

    def test_faster_core_is_faster(self):
        slow = ClassicalTimingModel(effective_gflops=1.0).time_us(1e8)
        fast = ClassicalTimingModel(effective_gflops=10.0).time_us(1e8)
        assert fast == pytest.approx(slow / 10.0)

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassicalTimingModel().time_us(-1.0)

    def test_invalid_throughput_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassicalTimingModel(effective_gflops=0.0)


class TestZeroForcingModel:
    def test_flops_grow_with_users(self):
        assert zero_forcing_flops(16, 16) > zero_forcing_flops(8, 8)

    def test_flops_grow_with_subcarriers(self):
        assert (zero_forcing_flops(8, 8, num_subcarriers=10)
                == pytest.approx(10 * zero_forcing_flops(8, 8)))

    def test_time_is_cubic_ish_in_users(self):
        small = zero_forcing_time_us(12, 12)
        large = zero_forcing_time_us(48, 48)
        assert large / small > 20  # at least super-quadratic growth

    def test_time_positive_and_reasonable(self):
        # A 48-user zero-forcing solve should take on the order of tens to
        # hundreds of microseconds on one core — the scale Fig. 14 relies on.
        time_us = zero_forcing_time_us(48, 48)
        assert 10.0 < time_us < 10_000.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            zero_forcing_flops(0, 8)


class TestSphereDecoderModel:
    def test_flops_per_node_grow_with_constellation(self):
        assert (sphere_decoder_flops_per_node(8, 16)
                > sphere_decoder_flops_per_node(8, 2))

    def test_time_proportional_to_nodes(self):
        one = sphere_decoder_time_us(100, 12, 4)
        two = sphere_decoder_time_us(200, 12, 4)
        assert two == pytest.approx(2 * one)

    def test_zero_nodes_zero_time(self):
        assert sphere_decoder_time_us(0, 12, 4) == 0.0

    def test_table1_unfeasible_band_exceeds_wifi_budget(self):
        # ~1,900 visited nodes (the paper's "unfeasible" band) should exceed
        # the tens-of-microseconds Wi-Fi feedback budget on one core.
        time_us = sphere_decoder_time_us(1900, 30, 2)
        assert time_us > 25.0 / 10  # comfortably beyond a per-subcarrier share
