"""Smoke tests for the example applications.

Each example is imported and its entry points are exercised with very small
workloads, guaranteeing that the documented user journeys keep working.
"""

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesPresence:
    def test_at_least_three_examples_exist(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3
        names = {script.stem for script in scripts}
        assert "quickstart" in names

    @pytest.mark.parametrize("name", [
        "quickstart", "large_mimo_uplink", "annealer_parameter_tuning",
        "trace_driven_cran", "cran_serving",
    ])
    def test_examples_have_docstring_and_main(self, name):
        module = load_example(name)
        assert module.__doc__
        assert hasattr(module, "main")


class TestQuickstartRuns:
    def test_main_executes(self, capsys):
        module = load_example("quickstart")
        module.main()
        output = capsys.readouterr().out
        assert "QuAMax bits" in output
        assert "Zero-forcing bits" in output


class TestLargeMimoHelpers:
    def test_evaluate_size_small(self):
        module = load_example("large_mimo_uplink")
        row = module.evaluate_size(num_users=4, modulation="QPSK", snr_db=20.0,
                                   num_channel_uses=1, seed=3)
        assert row["users"] == 4
        assert row["sphere_nodes"] >= 4
        assert row["zf_time_us"] > 0
        assert 0.0 <= row["quamax_ber"] <= 1.0


class TestParameterTuningHelpers:
    def test_median_tts_finite_for_easy_problem(self):
        module = load_example("annealer_parameter_tuning")
        tts = module.median_tts(num_users=8, modulation="BPSK",
                                chain_strength=4.0, extended_range=True,
                                pause_time_us=1.0, num_instances=1,
                                num_anneals=40, seed=5)
        assert tts > 0


class TestCranServingHelpers:
    def test_build_workload_and_describe(self, capsys):
        module = load_example("cran_serving")
        jobs = module.build_workload(num_bursts=2, seed=0)
        assert len(jobs) == 8
        from repro import CranService, QuAMaxDecoder, QuantumAnnealerSimulator
        from repro.annealer.chimera import ChimeraGraph
        from repro.annealer.machine import AnnealerParameters
        decoder = QuAMaxDecoder(QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
                                AnnealerParameters(num_anneals=5))
        report = CranService(decoder, max_batch=4,
                             max_wait_us=10_000.0).run(jobs)
        module.describe("demo", report)
        output = capsys.readouterr().out
        assert "jobs/s" in output
        assert "batch fill" in output


class TestTraceDrivenHelpers:
    def test_run_modulation_executes(self, capsys):
        from repro.channel import ArgosLikeTraceGenerator, TraceChannel
        module = load_example("trace_driven_cran")
        trace = ArgosLikeTraceGenerator(num_bs_antennas=16, num_users=8,
                                        num_subcarriers=4).generate(
            num_frames=2, random_state=0)
        module.run_modulation("BPSK", TraceChannel(trace), num_channel_uses=1,
                              snr_db=30.0, seed=1)
        output = capsys.readouterr().out
        assert "BER" in output
