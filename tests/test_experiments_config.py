"""Tests for experiment configuration and the scenario runner."""

import numpy as np
import pytest

from repro.annealer.machine import QuantumAnnealerSimulator
from repro.channel.models import RandomPhaseChannel
from repro.experiments.config import ExperimentConfig, MimoScenario
from repro.experiments.runner import InstanceRecord, ScenarioRunner, format_table


class TestMimoScenario:
    def test_labels(self):
        assert MimoScenario("QPSK", 18).label == "18x18 QPSK (noiseless)"
        assert MimoScenario("bpsk", 48, 20.0).label == "48x48 BPSK @ 20 dB"

    def test_logical_qubits(self):
        assert MimoScenario("BPSK", 48).num_logical_qubits == 48
        assert MimoScenario("QPSK", 18).num_logical_qubits == 36
        assert MimoScenario("16-QAM", 9).num_logical_qubits == 36

    def test_invalid_modulation(self):
        with pytest.raises(Exception):
            MimoScenario("8PSK", 4)

    def test_invalid_users(self):
        with pytest.raises(Exception):
            MimoScenario("BPSK", 0)


class TestExperimentConfig:
    def test_presets(self):
        quick = ExperimentConfig.quick()
        paper = ExperimentConfig.paper_scale()
        assert quick.num_instances < paper.num_instances
        assert quick.num_anneals < paper.num_anneals

    def test_scaled_override(self):
        config = ExperimentConfig().scaled(num_instances=2, num_anneals=10)
        assert config.num_instances == 2
        assert config.num_anneals == 10
        assert config.seed == ExperimentConfig().seed

    def test_build_annealer(self):
        config = ExperimentConfig(chip_cells=4)
        annealer = config.build_annealer()
        assert isinstance(annealer, QuantumAnnealerSimulator)
        assert annealer.num_qubits == 4 * 4 * 8

    def test_channel_model_default(self):
        config = ExperimentConfig()
        model = config.channel_model(MimoScenario("BPSK", 4))
        assert isinstance(model, RandomPhaseChannel)

    def test_validation(self):
        with pytest.raises(Exception):
            ExperimentConfig(num_instances=0)
        with pytest.raises(Exception):
            ExperimentConfig(chip_cells=20)


class TestScenarioRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        config = ExperimentConfig(num_instances=2, num_anneals=15, chip_cells=6)
        return ScenarioRunner(config)

    def test_channel_uses_are_deterministic(self, runner):
        scenario = MimoScenario("BPSK", 6)
        a = runner.make_channel_use(scenario, 0)
        b = runner.make_channel_use(scenario, 0)
        np.testing.assert_array_equal(a.received, b.received)
        np.testing.assert_array_equal(a.transmitted_bits, b.transmitted_bits)

    def test_different_instances_differ(self, runner):
        scenario = MimoScenario("BPSK", 6)
        a = runner.make_channel_use(scenario, 0)
        b = runner.make_channel_use(scenario, 1)
        assert not np.array_equal(a.received, b.received)

    def test_snr_respected(self, runner):
        scenario = MimoScenario("QPSK", 4, 20.0)
        channel_use = runner.make_channel_use(scenario, 0)
        assert channel_use.snr_db == 20.0
        assert channel_use.noise_variance > 0

    def test_default_parameters_reflect_config(self, runner):
        parameters = runner.default_parameters()
        assert parameters.num_anneals == 15
        assert parameters.chain_strength == runner.config.chain_strength
        override = runner.default_parameters(chain_strength=9.0)
        assert override.chain_strength == 9.0

    def test_run_instance_produces_record(self, runner):
        record = runner.run_instance(MimoScenario("BPSK", 6), 0)
        assert isinstance(record, InstanceRecord)
        assert record.bit_errors >= 0
        assert record.profile.num_bits == 6
        assert record.tts() > 0
        assert record.ttb(1e-6) > 0

    def test_run_scenario_count(self, runner):
        records = runner.run_scenario(MimoScenario("BPSK", 4), num_instances=2)
        assert len(records) == 2

    def test_runs_are_reproducible(self):
        config = ExperimentConfig(num_instances=1, num_anneals=10, chip_cells=6)
        first = ScenarioRunner(config).run_instance(MimoScenario("BPSK", 6), 0)
        second = ScenarioRunner(config).run_instance(MimoScenario("BPSK", 6), 0)
        assert first.outcome.run.best_energy == second.outcome.run.best_energy
        np.testing.assert_array_equal(first.outcome.detection.bits,
                                      second.outcome.detection.bits)


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", float("inf")]],
                            title="Title")
        assert "Title" in text
        assert "a" in text and "b" in text
        assert "inf" in text

    def test_number_formatting(self):
        text = format_table(["v"], [[0.000123456]])
        assert "0.000123" in text
