"""Tests for the end-to-end performance experiment drivers (Figs. 9-15)."""

import numpy as np
import pytest

from repro.experiments import fig09, fig10, fig11, fig12, fig13, fig14, fig15
from repro.experiments.config import ExperimentConfig


TINY = ExperimentConfig(num_instances=2, num_anneals=30, chip_cells=8, seed=21)


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09.run(TINY, scenarios=(("BPSK", 12), ("QPSK", 6)),
                         time_grid_us=(2.0, 20.0, 200.0), target_ber=1e-3)

    def test_curves_present(self, result):
        assert len(result.curves) == 2
        curve = result.curve("12x12 BPSK (noiseless)")
        assert curve.times_us.size == 3

    def test_ber_decreases_with_time(self, result):
        for curve in result.curves:
            assert curve.median_ber[-1] <= curve.median_ber[0] + 1e-12

    def test_ttb_reported(self, result):
        for curve in result.curves:
            assert curve.median_ttb_us > 0

    def test_formatting(self, result):
        assert "Figure 9" in fig09.format_result(result)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run(TINY, scenarios=(("BPSK", 12), ("QPSK", 6)),
                         target_ber=1e-3)

    def test_boxes(self, result):
        assert len(result.boxes) == 2
        box = result.box("12x12 BPSK (noiseless)")
        assert box.ttb_values_us.size == TINY.num_instances
        assert 0.0 <= box.fraction_reached <= 1.0

    def test_percentiles_ordered_when_reached(self, result):
        for box in result.boxes:
            if box.reached.size:
                assert box.percentile(25) <= box.median_us <= box.percentile(75)

    def test_unknown_scenario_raises(self, result):
        with pytest.raises(KeyError):
            result.box("nope")

    def test_formatting(self, result):
        assert "Figure 10" in fig10.format_result(result)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11.run(TINY, scenarios=(("BPSK", 12),),
                         frame_sizes=(50, 1500), target_fer=1e-2)

    def test_points(self, result):
        assert len(result.points) == 2
        point = result.point("12x12 BPSK (noiseless)", 50)
        assert point.frame_size_bytes == 50

    def test_larger_frames_not_faster(self, result):
        small = result.point("12x12 BPSK (noiseless)", 50)
        large = result.point("12x12 BPSK (noiseless)", 1500)
        if np.isfinite(small.median_ttf_us) and np.isfinite(large.median_ttf_us):
            assert large.median_ttf_us >= small.median_ttf_us - 1e-9

    def test_sensitivity_metric(self, result):
        assert result.sensitivity_to_frame_size("12x12 BPSK (noiseless)") >= 1.0

    def test_missing_point_raises(self, result):
        with pytest.raises(KeyError):
            result.point("12x12 BPSK (noiseless)", 999)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12.run(TINY, scenario=("QPSK", 6), snrs_db=(10.0, 30.0))

    def test_points(self, result):
        assert len(result.points) == 2
        assert result.point(10.0).snr_db == 10.0

    def test_probability_in_range(self, result):
        for point in result.points:
            assert 0.0 <= point.ground_state_probability <= 1.0

    def test_high_snr_not_worse_than_low(self, result):
        low = result.point(10.0)
        high = result.point(30.0)
        assert (high.best_solution_bit_errors
                <= low.best_solution_bit_errors + 2)

    def test_missing_snr_raises(self, result):
        with pytest.raises(KeyError):
            result.point(99.0)


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13.run(TINY,
                         user_sweeps=(("BPSK", (8, 12)),),
                         snrs_db=(15.0, 30.0),
                         right_panel_scenario=("QPSK", 6),
                         target_ber=1e-3)

    def test_panel_sizes(self, result):
        assert len(result.user_sweep_points) == 2
        assert len(result.snr_sweep_points) == 2

    def test_user_sweep_sorted(self, result):
        sweep = result.user_sweep("BPSK")
        assert [p.scenario.num_users for p in sweep] == [8, 12]

    def test_snr_sweep_sorted(self, result):
        sweep = result.snr_sweep()
        assert [p.scenario.snr_db for p in sweep] == [15.0, 30.0]

    def test_floor_ber_in_range(self, result):
        for point in result.user_sweep_points + result.snr_sweep_points:
            assert 0.0 <= point.median_final_ber <= 1.0

    def test_formatting(self, result):
        assert "Figure 13" in fig13.format_result(result)


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14.run(TINY, scenarios=(("BPSK", (12,), 10.0),
                                          ("QPSK", (8,), 15.0)))

    def test_points(self, result):
        assert len(result.points) == 2

    def test_zero_forcing_struggles_at_low_snr(self, result):
        # The square, low-SNR regime of Fig. 14: ZF must show a clear error
        # floor on at least one scenario.
        assert any(point.zero_forcing_ber > 0.005 for point in result.points)

    def test_quamax_floor_not_worse_than_zf(self, result):
        for point in result.points:
            assert point.quamax_floor_ber <= point.zero_forcing_ber + 0.02

    def test_times_positive(self, result):
        for point in result.points:
            assert point.zero_forcing_time_us > 0
            assert point.quamax_time_to_match_us > 0
            assert point.speedup > 0

    def test_formatting(self, result):
        assert "zero-forcing" in fig14.format_result(result)


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig(num_instances=2, num_anneals=30, chip_cells=8,
                                  seed=5)
        return fig15.run(config, modulations=("BPSK", "QPSK"), snr_db=30.0,
                         target_ber=1e-3, target_fer=1e-2,
                         frame_size_bytes=50)

    def test_points(self, result):
        assert len(result.points) == 2
        assert result.point("BPSK").scenario.num_users == 8

    def test_bpsk_not_slower_than_qpsk(self, result):
        bpsk = result.point("BPSK").median_ttb_us
        qpsk = result.point("QPSK").median_ttb_us
        if np.isfinite(bpsk) and np.isfinite(qpsk):
            assert bpsk <= qpsk * 2.0

    def test_ttf_at_least_ttb_duration_scale(self, result):
        for point in result.points:
            assert point.median_ttf_us > 0

    def test_missing_modulation_raises(self, result):
        with pytest.raises(KeyError):
            result.point("16-QAM")

    def test_formatting(self, result):
        assert "trace" in fig15.format_result(result).lower()

    def test_trace_builder_shape(self):
        trace = fig15.build_trace(ExperimentConfig(seed=1), num_frames=2)
        assert trace.num_bs_antennas == 96
        assert trace.num_users == 8
