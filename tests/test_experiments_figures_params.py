"""Tests for the QA-parameter experiment drivers (Figs. 4-8).

These drivers run the simulated annealer, so the tests use deliberately tiny
configurations (few instances, few anneals, small problems); they check the
structure and internal consistency of the results rather than absolute
numbers.
"""

import numpy as np
import pytest

from repro.experiments import fig04, fig05, fig06, fig07, fig08
from repro.experiments.config import ExperimentConfig


TINY = ExperimentConfig(num_instances=2, num_anneals=30, chip_cells=8, seed=11)


class TestFig04:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04.run(TINY, scenarios=(("BPSK", 12), ("QPSK", 6)),
                         instances_per_scenario=1)

    def test_profiles_present(self, result):
        assert len(result.profiles) == 2
        labels = {p.scenario.label for p in result.profiles}
        assert "12x12 BPSK (noiseless)" in labels

    def test_probabilities_normalised(self, result):
        for profile in result.profiles:
            assert profile.probabilities.sum() == pytest.approx(1.0)
            assert profile.num_ranks == profile.probabilities.size

    def test_energy_gaps_start_at_zero_and_increase(self, result):
        for profile in result.profiles:
            assert profile.energy_gaps[0] == pytest.approx(0.0)
            assert np.all(np.diff(profile.energy_gaps) >= -1e-12)

    def test_grouping_and_median(self, result):
        groups = result.by_modulation()
        assert set(groups) == {"BPSK", "QPSK"}
        assert 0.0 <= result.median_ground_state_probability("BPSK") <= 1.0
        assert result.median_ground_state_probability("missing") == 0.0

    def test_formatting(self, result):
        text = fig04.format_result(result)
        assert "Figure 4" in text


class TestFig05:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05.run(TINY, scenarios=(("BPSK", 12),),
                         chain_strengths=(2.0, 6.0), ranges=(False, True))

    def test_grid_size(self, result):
        assert len(result.points) == 1 * 2 * 2

    def test_curve_lookup(self, result):
        curve = result.curve("12x12 BPSK (noiseless)", extended_range=True)
        assert [p.chain_strength for p in curve] == [2.0, 6.0]

    def test_best_chain_strength_is_in_sweep(self, result):
        best = result.best_chain_strength("12x12 BPSK (noiseless)", True)
        assert best in (2.0, 6.0)

    def test_sensitivity_positive(self, result):
        value = result.sensitivity("12x12 BPSK (noiseless)", True)
        assert value >= 1.0

    def test_formatting(self, result):
        assert "|J_F|" in fig05.format_result(result)


class TestFig06:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06.run(TINY, user_counts=(6,), anneal_times_us=(1.0, 4.0))

    def test_points(self, result):
        assert len(result.points) == 2
        curve = result.curve("6x6 QPSK (noiseless)")
        assert [p.anneal_time_us for p in curve] == [1.0, 4.0]

    def test_probability_not_decreasing_with_time(self, result):
        curve = result.curve("6x6 QPSK (noiseless)")
        assert (curve[1].median_ground_state_probability
                >= curve[0].median_ground_state_probability - 0.2)

    def test_best_anneal_time(self, result):
        assert result.best_anneal_time("6x6 QPSK (noiseless)") in (1.0, 4.0)

    def test_unknown_scenario_raises(self, result):
        with pytest.raises(KeyError):
            result.best_anneal_time("nope")


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self):
        return fig07.run(TINY, scenario=("QPSK", 6), pause_times_us=(1.0,),
                         pause_positions=(0.25, 0.45))

    def test_points(self, result):
        assert len(result.points) == 2
        assert len(result.curve(1.0)) == 2

    def test_best_point(self, result):
        best = result.best_point()
        assert best.pause_position in (0.25, 0.45)

    def test_formatting(self, result):
        assert "pause" in fig07.format_result(result).lower()


class TestFig08:
    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig(num_instances=1, num_anneals=30, chip_cells=8,
                                  seed=3)
        return fig08.run(config, scenario=("QPSK", 6),
                         anneal_counts=(1, 5, 20),
                         opt_chain_strengths=(4.0,))

    def test_four_curves(self, result):
        labels = {curve.label for curve in result.curves}
        assert labels == {"no pause / Fix", "no pause / Opt",
                          "pause / Fix", "pause / Opt"}

    def test_ber_monotone_in_anneals(self, result):
        for curve in result.curves:
            assert np.all(np.diff(curve.median_ber) <= 1e-12)

    def test_pause_curve_has_longer_anneals(self, result):
        pause = result.curve("pause / Fix")
        no_pause = result.curve("no pause / Fix")
        assert pause.anneal_duration_us == pytest.approx(
            2.0 * no_pause.anneal_duration_us)

    def test_ber_at_time_uses_time_budget(self, result):
        curve = result.curve("pause / Fix")
        assert curve.ber_at_time(1000.0) <= curve.ber_at_time(2.0) + 1e-12

    def test_unknown_curve_raises(self, result):
        with pytest.raises(KeyError):
            result.curve("nonexistent")
