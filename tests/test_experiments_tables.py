"""Tests for the Table 1 and Table 2 experiment drivers."""

import pytest

from repro import constants
from repro.experiments import table1, table2
from repro.experiments.config import ExperimentConfig, MimoScenario


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        # Small instance counts and the two smaller complexity bands keep the
        # sphere decoder affordable while preserving the scaling shape.
        config = ExperimentConfig(num_instances=3, seed=7)
        return table1.run(config, rows=((12, 7, 4), (21, 11, 6)))

    def test_rows_present(self, result):
        assert len(result.rows) == 2
        assert result.rows[0].bpsk_users == 12
        assert result.rows[1].qam16_users == 6

    def test_complexity_increases_down_the_table(self, result):
        assert (result.rows[1].mean_visited_nodes
                > result.rows[0].mean_visited_nodes)

    def test_first_band_is_feasible(self, result):
        assert result.rows[0].verdict == "feasible"

    def test_formatting(self, result):
        text = table1.format_result(result)
        assert "Sphere Decoder" in text
        assert "feasible" in text

    def test_classify_bands(self):
        assert table1.classify(40) == "feasible"
        assert table1.classify(500) == "borderline"
        assert table1.classify(5000) == "unfeasible"

    def test_mean_visited_nodes_positive(self):
        config = ExperimentConfig(num_instances=2, seed=1)
        nodes = table1.mean_visited_nodes(MimoScenario("BPSK", 6, 13.0), config)
        assert nodes >= 6  # at least one node per tree level


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run()

    @pytest.mark.parametrize("users,modulation,logical,physical", [
        (10, "BPSK", 10, 40),
        (10, "QPSK", 20, 120),
        (10, "16-QAM", 40, 440),
        (10, "64-QAM", 60, 960),
        (20, "16-QAM", 80, 1680),
        (60, "BPSK", 60, 960),
        (60, "64-QAM", 360, 32760),
    ])
    def test_paper_cells(self, result, users, modulation, logical, physical):
        entry = result.entry(users, modulation)
        assert entry.logical_qubits == logical
        assert entry.physical_qubits == physical

    def test_feasibility_flags(self, result):
        # Feasible on DW2Q: 60-user BPSK, 20-user 16-QAM; infeasible: 60-user
        # QPSK, 40-user 16-QAM (matching the paper's bold entries).
        assert result.entry(60, "BPSK").fits_dw2q
        assert result.entry(20, "16-QAM").fits_dw2q
        assert not result.entry(60, "QPSK").fits_dw2q
        assert not result.entry(40, "16-QAM").fits_dw2q

    def test_all_cells_present(self, result):
        assert len(result.entries) == 16

    def test_missing_entry_raises(self, result):
        with pytest.raises(KeyError):
            result.entry(99, "BPSK")

    def test_formatting(self, result):
        text = table2.format_result(result)
        assert "Table 2" in text
        assert "60 (960)" in text
        assert "*" in text  # infeasible marker
