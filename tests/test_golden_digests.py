"""Golden-digest regression tests for seeded end-to-end decode outputs.

Between the seed revision and PR 1 the per-subcarrier child-stream derivation
changed seeded pipeline outputs *silently* — nothing failed, the numbers just
moved.  These tests freeze the seeded outputs of the decode paths (and of the
dense-kernel sampler stream underneath them) as committed SHA-256 digests in
``tests/goldens/``, so the next stream change fails loudly and has to be
acknowledged by regenerating the fixtures (``UPDATE_GOLDENS=1``) and
documenting the move in CHANGES.md.

The digests also pin the cross-path contracts: serial, batched and chunked
decodes of the same seed must all hash to the same per-subcarrier outputs.
"""

import numpy as np
import pytest

from repro.annealer.chimera import ChimeraGraph
from repro.annealer.engine import IsingSampler
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.decoder.pipeline import OFDMDecodingPipeline
from repro.decoder.quamax import QuAMaxDecoder
from repro.ising.model import IsingModel
from repro.ising.solver import (
    SimulatedAnnealingSolver,
    geometric_temperature_schedule,
)
from repro.mimo.system import MimoUplink

SEED = 2019
NUM_SUBCARRIERS = 6
FRAME_BYTES = 3


def _path_chain_embedded_problem(num_variables=128, chain_length=16):
    """The embedded 128-variable path-chain workload of the cluster benches.

    Built through the shared cluster_workloads builder so the golden digest
    pins
    exactly the problem family the equivalence and backend suites exercise.
    """
    from cluster_workloads import build_path_chain_problem

    return build_path_chain_problem(num_variables, chain_length, SEED,
                                    density=0.05)


@pytest.fixture(scope="module")
def pipeline():
    machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4))
    decoder = QuAMaxDecoder(machine, AnnealerParameters(num_anneals=25),
                            random_state=0)
    return OFDMDecodingPipeline(decoder)


@pytest.fixture(scope="module")
def channel_uses():
    link = MimoUplink(num_users=3, constellation="QPSK")
    rng = np.random.default_rng(SEED)
    return [link.transmit(snr_db=18.0, random_state=rng)
            for _ in range(NUM_SUBCARRIERS)]


def report_payload(report):
    """Canonical payload of a :class:`PipelineReport` for digesting."""
    return [
        {
            "subcarrier": result.subcarrier,
            "bits": result.result.detection.bits,
            "samples": result.result.run.solutions.samples,
            "occurrences": result.result.run.solutions.num_occurrences,
            "energies": result.result.run.solutions.energies,
            "bit_errors": result.bit_errors,
        }
        for result in report.subcarrier_results
    ]


def frame_payload(result):
    """Canonical payload of a :class:`FrameResult` for digesting."""
    return {
        "bits_accumulated": result.bits_accumulated,
        "bit_errors": result.bit_errors(),
        "total_compute_time_us": result.total_compute_time_us,
        "subcarriers": report_payload(result),
    }


class TestGoldenDigests:
    def test_decode_subcarriers(self, pipeline, channel_uses, golden):
        report = pipeline.decode_subcarriers(channel_uses, random_state=SEED)
        golden("decode_subcarriers", report_payload(report))

    def test_decode_subcarriers_batched(self, pipeline, channel_uses, golden,
                                        array_digest):
        serial = pipeline.decode_subcarriers(channel_uses, random_state=SEED)
        batched = pipeline.decode_subcarriers_batched(channel_uses,
                                                      random_state=SEED)
        # The batched path must hash to the very same outputs as serial...
        assert (array_digest(report_payload(batched))
                == array_digest(report_payload(serial)))
        # ...and that shared stream is itself frozen.
        golden("decode_subcarriers_batched", report_payload(batched))

    def test_decode_frame_chunked(self, pipeline, channel_uses, golden,
                                  array_digest):
        serial = pipeline.decode_frame(channel_uses,
                                       frame_size_bytes=FRAME_BYTES,
                                       random_state=SEED)
        chunked = pipeline.decode_frame(channel_uses,
                                        frame_size_bytes=FRAME_BYTES,
                                        random_state=SEED,
                                        batched=True, chunk_size=2)
        assert (array_digest(frame_payload(chunked))
                == array_digest(frame_payload(serial)))
        golden("decode_frame_chunked", frame_payload(chunked))

    def test_decode_frame_auto_chunked(self, pipeline, channel_uses, golden,
                                       array_digest):
        # The adaptive mode must sit on the very same seeded stream as the
        # serial early-exit decode (same child-stream derivation, no draws
        # added or dropped by the estimator), and that stream is frozen.
        serial = pipeline.decode_frame(channel_uses,
                                       frame_size_bytes=FRAME_BYTES,
                                       random_state=SEED)
        auto = pipeline.decode_frame(channel_uses,
                                     frame_size_bytes=FRAME_BYTES,
                                     random_state=SEED,
                                     batched=True, chunk_size="auto")
        assert auto.num_decoded == serial.num_decoded
        assert (array_digest(frame_payload(auto))
                == array_digest(frame_payload(serial)))
        golden("decode_frame_auto_chunked", frame_payload(auto))

    def test_embedded_cluster_sampler_stream(self, golden):
        # Guards the cluster-kernel stream: the embedded 128-variable
        # path-chain workload (ferromagnetic chains of 16 + sparse cross
        # couplings, chain clusters offered collective flips) annealed
        # through the numpy reference loops.  The fused compiled cluster
        # kernels must hash to this same stream (class below).
        ising, clusters = _path_chain_embedded_problem()
        sampler = IsingSampler(ising, clusters=clusters, backend="numpy")
        spins = sampler.anneal(
            geometric_temperature_schedule(50, 5.0, 0.05), 12,
            random_state=SEED)
        golden("embedded_cluster_sampler_stream", {"spins": spins})

    def test_dense_kernel_sampler_stream(self, golden):
        # Guards the engine-level stream the decode paths sit on: a dense
        # logical problem sampled through the auto-dispatched dense kernel.
        rng = np.random.default_rng(SEED)
        n = 16
        ising = IsingModel(
            num_variables=n,
            linear=rng.normal(size=n),
            couplings={(i, j): float(rng.normal())
                       for i in range(n) for j in range(i + 1, n)})
        solver = SimulatedAnnealingSolver(num_sweeps=80, num_reads=40)
        result = solver.sample(ising, random_state=SEED)
        golden("dense_kernel_sampler_stream", {
            "samples": result.samples,
            "energies": result.energies,
            "occurrences": result.num_occurrences,
        })

    def test_counter_dense_sampler_stream(self, golden):
        # Freezes the counter-mode (keyed Philox) dense stream: same
        # problem as the sequential golden above, annealed under
        # rng="counter".  A *separate* fixture on purpose — the counter
        # contract is its own exact stream, and any change to the Philox
        # packing, key derivation or acceptance rule must fail loudly here
        # without touching the sequential goldens.
        rng = np.random.default_rng(SEED)
        n = 16
        ising = IsingModel(
            num_variables=n,
            linear=rng.normal(size=n),
            couplings={(i, j): float(rng.normal())
                       for i in range(n) for j in range(i + 1, n)})
        solver = SimulatedAnnealingSolver(num_sweeps=80, num_reads=40,
                                          rng="counter")
        result = solver.sample(ising, random_state=SEED)
        golden("counter_dense_sampler_stream", {
            "samples": result.samples,
            "energies": result.energies,
            "occurrences": result.num_occurrences,
        })

    def test_counter_embedded_cluster_sampler_stream(self, golden):
        # Freezes the counter-mode cluster stream of the embedded
        # path-chain workload (the fused dense+cluster counter kernels).
        ising, clusters = _path_chain_embedded_problem()
        sampler = IsingSampler(ising, clusters=clusters, backend="numpy",
                               rng="counter")
        spins = sampler.anneal(
            geometric_temperature_schedule(50, 5.0, 0.05), 12,
            random_state=SEED)
        golden("counter_embedded_cluster_sampler_stream", {"spins": spins})


class TestGoldenDigestsAcrossBackends:
    """Every available backend must hash to the very same frozen streams.

    The committed goldens were recorded from the numpy reference loops;
    compiled backends consume the same draws, so their seeded outputs must
    land on identical digests — no per-backend fixtures exist on purpose.
    """

    from repro.annealer.backends import available_backends as _avail

    BACKENDS = list(_avail())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dense_kernel_sampler_stream_per_backend(self, backend, golden):
        rng = np.random.default_rng(SEED)
        n = 16
        ising = IsingModel(
            num_variables=n,
            linear=rng.normal(size=n),
            couplings={(i, j): float(rng.normal())
                       for i in range(n) for j in range(i + 1, n)})
        solver = SimulatedAnnealingSolver(num_sweeps=80, num_reads=40,
                                          backend=backend)
        result = solver.sample(ising, random_state=SEED)
        golden("dense_kernel_sampler_stream", {
            "samples": result.samples,
            "energies": result.energies,
            "occurrences": result.num_occurrences,
        })

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_embedded_cluster_sampler_stream_per_backend(self, backend,
                                                         golden):
        ising, clusters = _path_chain_embedded_problem()
        sampler = IsingSampler(ising, clusters=clusters, backend=backend)
        spins = sampler.anneal(
            geometric_temperature_schedule(50, 5.0, 0.05), 12,
            random_state=SEED)
        golden("embedded_cluster_sampler_stream", {"spins": spins})

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counter_dense_sampler_stream_per_backend(self, backend, golden):
        # The counter contract's cross-backend clause: every backend (at
        # any thread count — pinned at 2 for compiled ones) must hash to
        # the same frozen counter stream the numpy reference recorded.
        rng = np.random.default_rng(SEED)
        n = 16
        ising = IsingModel(
            num_variables=n,
            linear=rng.normal(size=n),
            couplings={(i, j): float(rng.normal())
                       for i in range(n) for j in range(i + 1, n)})
        solver = SimulatedAnnealingSolver(
            num_sweeps=80, num_reads=40, backend=backend, rng="counter",
            threads=1 if backend == "numpy" else 2)
        result = solver.sample(ising, random_state=SEED)
        golden("counter_dense_sampler_stream", {
            "samples": result.samples,
            "energies": result.energies,
            "occurrences": result.num_occurrences,
        })

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counter_embedded_cluster_stream_per_backend(self, backend,
                                                         golden):
        ising, clusters = _path_chain_embedded_problem()
        sampler = IsingSampler(ising, clusters=clusters, backend=backend,
                               rng="counter",
                               threads=1 if backend == "numpy" else 2)
        spins = sampler.anneal(
            geometric_temperature_schedule(50, 5.0, 0.05), 12,
            random_state=SEED)
        golden("counter_embedded_cluster_sampler_stream", {"spins": spins})

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_decode_subcarriers_per_backend(self, backend, channel_uses,
                                            golden):
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4))
        decoder = QuAMaxDecoder(machine, AnnealerParameters(num_anneals=25),
                                random_state=0, backend=backend)
        pipeline = OFDMDecodingPipeline(decoder)
        report = pipeline.decode_subcarriers(channel_uses, random_state=SEED)
        golden("decode_subcarriers", report_payload(report))
