"""End-to-end integration tests crossing every layer of the library.

These tests exercise the full paper pipeline — transmit, reduce, embed,
anneal, unembed, post-translate, score — and the cross-detector consistency
properties that tie the reproduction back to the paper's claims.
"""

import numpy as np
import pytest

from repro import (
    AnnealerParameters,
    AnnealSchedule,
    ChimeraGraph,
    ExhaustiveMLDetector,
    ICEModel,
    MimoUplink,
    QuantumAnnealerSimulator,
    QuAMaxDecoder,
    SphereDecoder,
    ZeroForcingDetector,
)
from repro.channel import ArgosLikeTraceGenerator, RandomPhaseChannel, TraceChannel
from repro.ising import BruteForceIsingSolver
from repro.metrics import InstanceSolutionProfile, bit_error_rate, time_to_solution
from repro.transform import MLToIsingReducer


class TestDetectorAgreement:
    """All exact detectors must agree: brute-force ML, Sphere, Ising ground state."""

    @pytest.mark.parametrize("constellation,num_users,snr_db", [
        ("BPSK", 6, 10.0), ("QPSK", 3, 12.0), ("16-QAM", 2, 15.0),
        ("BPSK", 6, None), ("QPSK", 3, None),
    ])
    def test_three_way_agreement(self, constellation, num_users, snr_db):
        link = MimoUplink(num_users=num_users, constellation=constellation)
        channel_use = link.transmit(snr_db=snr_db, random_state=31)
        ml = ExhaustiveMLDetector().detect(channel_use)
        sphere = SphereDecoder().detect(channel_use)
        reduced = MLToIsingReducer().reduce(channel_use)
        ground = BruteForceIsingSolver(max_variables=12).solve(reduced.ising)
        ising_bits = reduced.bits_from_spins(ground.best_sample)
        np.testing.assert_array_equal(ml.bits, sphere.bits)
        np.testing.assert_array_equal(ml.bits, ising_bits)
        assert ground.best_energy == pytest.approx(ml.metric, rel=1e-9, abs=1e-9)


class TestFullQuamaxPipeline:
    def test_quamax_beats_zero_forcing_on_poorly_conditioned_channel(self):
        # The paper's central comparison (Fig. 14) in miniature: at a square,
        # moderate-SNR operating point, QuAMax (ML) makes fewer errors than ZF.
        link = MimoUplink(num_users=8, constellation="BPSK",
                          channel_model=RandomPhaseChannel())
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(6, 6))
        decoder = QuAMaxDecoder(machine, AnnealerParameters(num_anneals=50),
                                random_state=0)
        zero_forcing = ZeroForcingDetector()
        rng = np.random.default_rng(1)
        quamax_errors, zf_errors, total = 0, 0, 0
        for _ in range(4):
            channel_use = link.transmit(snr_db=10.0, random_state=rng)
            quamax_errors += np.count_nonzero(
                decoder.detect(channel_use).bits != channel_use.transmitted_bits)
            zf_errors += np.count_nonzero(
                zero_forcing.detect(channel_use).bits
                != channel_use.transmitted_bits)
            total += channel_use.num_bits
        assert quamax_errors <= zf_errors

    def test_modulation_order_hardness_at_fixed_logical_size(self):
        # Fig. 4's qualitative claim: at a fixed number of logical qubits the
        # ground-state probability drops from BPSK to QPSK to 16-QAM.
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(8, 8))
        decoder_parameters = AnnealerParameters(num_anneals=60)
        probabilities = {}
        for constellation, num_users in (("BPSK", 16), ("16-QAM", 4)):
            link = MimoUplink(num_users=num_users, constellation=constellation,
                              channel_model=RandomPhaseChannel())
            values = []
            for seed in range(2):
                channel_use = link.transmit(random_state=40 + seed)
                reduced = MLToIsingReducer().reduce(channel_use)
                decoder = QuAMaxDecoder(machine, decoder_parameters,
                                        random_state=seed)
                outcome = decoder.detect_with_run(channel_use)
                truth_energy = reduced.ising.energy(reduced.ground_truth_spins())
                values.append(outcome.run.ground_state_probability(truth_energy))
            probabilities[constellation] = np.mean(values)
        assert probabilities["BPSK"] >= probabilities["16-QAM"]

    def test_ttb_pipeline_produces_finite_time_for_easy_problem(self):
        link = MimoUplink(num_users=8, constellation="BPSK",
                          channel_model=RandomPhaseChannel())
        channel_use = link.transmit(random_state=3)
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(6, 6))
        decoder = QuAMaxDecoder(
            machine,
            AnnealerParameters(schedule=AnnealSchedule(1.0, 1.0), num_anneals=60),
            random_state=0)
        outcome = decoder.detect_with_run(channel_use)
        profile = outcome.solution_profile()
        ttb = profile.time_to_ber(1e-6)
        assert np.isfinite(ttb)
        assert ttb >= profile.anneal_duration_us / profile.parallelization

    def test_trace_driven_pipeline(self):
        trace = ArgosLikeTraceGenerator(num_bs_antennas=24, num_users=4,
                                        num_subcarriers=8).generate(
            num_frames=2, random_state=0)
        link = MimoUplink(num_users=4, constellation="QPSK",
                          channel_model=TraceChannel(trace))
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(6, 6),
                                           ice=ICEModel.disabled())
        decoder = QuAMaxDecoder(machine, AnnealerParameters(num_anneals=40),
                                random_state=0)
        channel_use = link.transmit(snr_db=30.0, random_state=4)
        result = decoder.detect(channel_use)
        assert bit_error_rate(channel_use.transmitted_bits, result.bits) <= 0.25

    def test_tts_improves_with_more_anneal_time_noise_free(self):
        link = MimoUplink(num_users=10, constellation="BPSK",
                          channel_model=RandomPhaseChannel())
        channel_use = link.transmit(random_state=5)
        reduced = MLToIsingReducer().reduce(channel_use)
        truth_energy = reduced.ising.energy(reduced.ground_truth_spins())
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(6, 6),
                                           ice=ICEModel.disabled())
        probabilities = []
        for anneal_time in (1.0, 8.0):
            parameters = AnnealerParameters(
                schedule=AnnealSchedule(anneal_time_us=anneal_time),
                num_anneals=40)
            run = machine.run(reduced.ising, parameters, random_state=2)
            probabilities.append(run.ground_state_probability(truth_energy))
        assert probabilities[1] >= probabilities[0]


class TestReproducibilityAcrossLayers:
    def test_same_seed_same_everything(self):
        def run_once():
            link = MimoUplink(num_users=6, constellation="QPSK",
                              channel_model=RandomPhaseChannel())
            channel_use = link.transmit(snr_db=20.0, random_state=77)
            machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(6, 6))
            decoder = QuAMaxDecoder(machine, AnnealerParameters(num_anneals=20),
                                    random_state=7)
            outcome = decoder.detect_with_run(channel_use)
            return outcome.detection.bits, outcome.run.best_energy

        bits_a, energy_a = run_once()
        bits_b, energy_b = run_once()
        np.testing.assert_array_equal(bits_a, bits_b)
        assert energy_a == energy_b
