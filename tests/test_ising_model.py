"""Tests for repro.ising.model (Ising / QUBO containers and conversions)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.ising.model import IsingModel, QUBOModel, bits_to_spins, spins_to_bits


def all_bit_vectors(n):
    for value in range(1 << n):
        yield np.array([(value >> k) & 1 for k in range(n)], dtype=np.uint8)


class TestSpinBitConversion:
    def test_spins_to_bits(self):
        np.testing.assert_array_equal(spins_to_bits([-1, 1, -1]), [0, 1, 0])

    def test_bits_to_spins(self):
        np.testing.assert_array_equal(bits_to_spins([0, 1, 1]), [-1, 1, 1])

    def test_roundtrip(self):
        spins = np.array([1, -1, 1, 1, -1])
        np.testing.assert_array_equal(bits_to_spins(spins_to_bits(spins)), spins)

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            spins_to_bits([0, 1])
        with pytest.raises(ConfigurationError):
            bits_to_spins([-1, 1])


class TestIsingModel:
    def make(self):
        return IsingModel(num_variables=3, linear=np.array([0.5, -1.0, 0.0]),
                          couplings={(0, 1): 1.0, (1, 2): -0.5}, offset=2.0)

    def test_energy_by_hand(self):
        ising = self.make()
        spins = np.array([1, -1, 1])
        expected = 2.0 + (0.5 * 1 - 1.0 * -1) + (1.0 * 1 * -1) + (-0.5 * -1 * 1)
        assert ising.energy(spins) == pytest.approx(expected)

    def test_energies_vectorised_matches_scalar(self):
        ising = self.make()
        spins = np.array([[1, 1, 1], [-1, 1, -1], [1, -1, -1]])
        vectorised = ising.energies(spins)
        for row, value in zip(spins, vectorised):
            assert ising.energy(row) == pytest.approx(value)

    def test_coupling_key_normalisation(self):
        ising = IsingModel(num_variables=2, linear=np.zeros(2),
                           couplings={(1, 0): 2.0})
        assert ising.couplings == {(0, 1): 2.0}

    def test_duplicate_couplings_summed(self):
        ising = IsingModel(num_variables=2, linear=np.zeros(2),
                           couplings={(0, 1): 2.0})
        ising2 = IsingModel(num_variables=2, linear=np.zeros(2),
                            couplings={(0, 1): 1.0, (1, 0): 1.0})
        assert ising2.couplings == ising.couplings

    def test_self_coupling_rejected(self):
        with pytest.raises(ConfigurationError):
            IsingModel(num_variables=2, linear=np.zeros(2), couplings={(0, 0): 1.0})

    def test_wrong_linear_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            IsingModel(num_variables=3, linear=np.zeros(2))

    def test_out_of_range_coupling_rejected(self):
        with pytest.raises(ConfigurationError):
            IsingModel(num_variables=2, linear=np.zeros(2), couplings={(0, 5): 1.0})

    def test_dense_roundtrip(self):
        ising = self.make()
        linear, matrix = ising.to_dense()
        rebuilt = IsingModel.from_dense(linear, matrix, offset=ising.offset)
        assert rebuilt.couplings == ising.couplings
        np.testing.assert_array_equal(rebuilt.linear, ising.linear)

    def test_neighbours_symmetric(self):
        adjacency = self.make().neighbours()
        assert adjacency[0][1] == 1.0
        assert adjacency[1][0] == 1.0
        assert adjacency[2][1] == -0.5

    def test_max_abs_coefficient(self):
        assert self.make().max_abs_coefficient == 1.0

    def test_scaled(self):
        scaled = self.make().scaled(2.0)
        assert scaled.couplings[(0, 1)] == 2.0
        assert scaled.offset == 4.0
        spins = np.array([1, 1, -1])
        assert scaled.energy(spins) == pytest.approx(2.0 * self.make().energy(spins))

    def test_zero_couplings_dropped(self):
        ising = IsingModel(num_variables=2, linear=np.zeros(2),
                           couplings={(0, 1): 0.0})
        assert ising.couplings == {}


class TestQUBOModel:
    def make(self):
        return QUBOModel(num_variables=3,
                         terms={(0, 0): -1.0, (1, 1): 2.0, (0, 1): 3.0,
                                (1, 2): -2.0},
                         offset=1.0)

    def test_energy_by_hand(self):
        qubo = self.make()
        bits = np.array([1, 1, 0])
        expected = 1.0 + (-1.0) + 2.0 + 3.0 + 0.0
        assert qubo.energy(bits) == pytest.approx(expected)

    def test_matrix_roundtrip(self):
        qubo = self.make()
        rebuilt = QUBOModel.from_matrix(qubo.to_matrix(), offset=qubo.offset)
        for bits in all_bit_vectors(3):
            assert rebuilt.energy(bits) == pytest.approx(qubo.energy(bits))

    def test_from_matrix_symmetric_input(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        qubo = QUBOModel.from_matrix(matrix)
        assert qubo.terms == {(0, 1): 2.0}

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            QUBOModel.from_matrix(np.zeros((2, 3)))


class TestConversions:
    def test_qubo_to_ising_preserves_energy(self):
        qubo = QUBOModel(num_variables=4,
                         terms={(0, 0): 1.5, (2, 2): -2.0, (0, 1): 1.0,
                                (1, 3): -3.0, (2, 3): 0.5},
                         offset=-1.0)
        ising = qubo.to_ising()
        for bits in all_bit_vectors(4):
            spins = bits_to_spins(bits)
            assert ising.energy(spins) == pytest.approx(qubo.energy(bits))

    def test_ising_to_qubo_preserves_energy(self):
        ising = IsingModel(num_variables=4,
                           linear=np.array([1.0, -0.5, 0.0, 2.0]),
                           couplings={(0, 1): -1.0, (1, 2): 0.7, (0, 3): 0.3},
                           offset=0.25)
        qubo = ising.to_qubo()
        for bits in all_bit_vectors(4):
            spins = bits_to_spins(bits)
            assert qubo.energy(bits) == pytest.approx(ising.energy(spins))

    def test_double_conversion_roundtrip(self):
        ising = IsingModel(num_variables=3, linear=np.array([0.2, -0.4, 1.0]),
                           couplings={(0, 2): -0.6, (1, 2): 0.9}, offset=3.0)
        back = ising.to_qubo().to_ising()
        for bits in all_bit_vectors(3):
            spins = bits_to_spins(bits)
            assert back.energy(spins) == pytest.approx(ising.energy(spins))

    def test_argmin_preserved(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            n = 5
            linear = rng.normal(size=n)
            couplings = {(i, j): rng.normal() for i in range(n)
                         for j in range(i + 1, n)}
            ising = IsingModel(num_variables=n, linear=linear, couplings=couplings)
            qubo = ising.to_qubo()
            best_ising = min(all_bit_vectors(n),
                             key=lambda b: ising.energy(bits_to_spins(b)))
            best_qubo = min(all_bit_vectors(n), key=qubo.energy)
            np.testing.assert_array_equal(best_ising, best_qubo)
