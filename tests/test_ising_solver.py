"""Tests for repro.ising.solver."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.ising.model import IsingModel
from repro.ising.solver import (
    BruteForceIsingSolver,
    SimulatedAnnealingSolver,
    SolverResult,
    aggregate_samples,
    geometric_temperature_schedule,
    metropolis_anneal,
)


def random_ising(num_variables, seed, density=1.0):
    rng = np.random.default_rng(seed)
    couplings = {}
    for i in range(num_variables):
        for j in range(i + 1, num_variables):
            if rng.random() <= density:
                couplings[(i, j)] = float(rng.normal())
    return IsingModel(num_variables=num_variables,
                      linear=rng.normal(size=num_variables),
                      couplings=couplings)


class TestSolverResult:
    def test_sorted_by_energy(self):
        result = SolverResult(
            samples=np.array([[1, 1], [-1, -1], [1, -1]], dtype=np.int8),
            energies=np.array([3.0, -1.0, 0.5]),
            num_occurrences=np.array([1, 5, 2]))
        assert result.best_energy == -1.0
        np.testing.assert_array_equal(result.best_sample, [-1, -1])
        assert list(result.energies) == sorted(result.energies)

    def test_best_bits(self):
        result = SolverResult(samples=np.array([[-1, 1]], dtype=np.int8),
                              energies=np.array([0.0]),
                              num_occurrences=np.array([1]))
        np.testing.assert_array_equal(result.best_bits, [0, 1])

    def test_ground_state_probability(self):
        result = SolverResult(
            samples=np.array([[1, 1], [-1, -1]], dtype=np.int8),
            energies=np.array([0.0, 1.0]),
            num_occurrences=np.array([3, 7]))
        assert result.ground_state_probability(0.0) == pytest.approx(0.3)
        assert result.ground_state_probability(-5.0) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            SolverResult(samples=np.array([[1, 1]]), energies=np.array([1.0, 2.0]),
                         num_occurrences=np.array([1]))


class TestAggregateSamples:
    def test_collapses_duplicates(self):
        ising = random_ising(3, 0)
        raw = np.array([[1, 1, 1], [1, 1, 1], [-1, 1, -1]], dtype=np.int8)
        result = aggregate_samples(ising, raw)
        assert result.num_samples == 2
        assert result.total_reads == 3

    def test_energies_match_model(self):
        ising = random_ising(4, 1)
        raw = np.array([[1, -1, 1, -1]], dtype=np.int8)
        result = aggregate_samples(ising, raw)
        assert result.energies[0] == pytest.approx(ising.energy(raw[0]))


class TestSparseEnergyOperator:
    """aggregate_samples / IsingModel.energies with a prebuilt CSR operator."""

    def test_energies_with_operator_never_densifies(self, monkeypatch):
        ising = random_ising(8, 20, density=0.6)
        operator = ising.coupling_operator()
        rng = np.random.default_rng(0)
        spins = rng.choice(np.array([-1, 1], dtype=np.int8), size=(12, 8))
        expected = ising.energies(spins)

        def densify_forbidden(self):
            raise AssertionError(
                "energies densified the couplings despite the cached operator")

        monkeypatch.setattr(IsingModel, "to_dense", densify_forbidden)
        np.testing.assert_allclose(ising.energies(spins, operator=operator),
                                   expected)

    def test_aggregate_samples_with_operator_matches_dense(self):
        ising = random_ising(7, 21)
        rng = np.random.default_rng(1)
        raw = rng.choice(np.array([-1, 1], dtype=np.int8), size=(20, 7))
        dense = aggregate_samples(ising, raw)
        sparse = aggregate_samples(ising, raw,
                                   operator=ising.coupling_operator())
        np.testing.assert_array_equal(dense.samples, sparse.samples)
        np.testing.assert_array_equal(dense.num_occurrences,
                                      sparse.num_occurrences)
        np.testing.assert_allclose(dense.energies, sparse.energies)

    def test_operator_of_uncoupled_problem(self):
        ising = IsingModel(num_variables=3, linear=np.array([1.0, -2.0, 0.5]))
        operator = ising.coupling_operator()
        assert operator.nnz == 0
        spins = np.array([[1, -1, 1]], dtype=np.int8)
        np.testing.assert_allclose(ising.energies(spins, operator=operator),
                                   ising.energies(spins))

    def test_operator_shape_mismatch_rejected(self):
        ising = random_ising(5, 22)
        wrong = random_ising(6, 23).coupling_operator()
        with pytest.raises(ConfigurationError):
            ising.energies(np.ones((1, 5)), operator=wrong)

    def test_sampler_matrix_is_the_problem_operator(self):
        from repro.annealer.engine import IsingSampler

        ising = random_ising(6, 24, density=0.8)
        sampler = IsingSampler(ising)
        np.testing.assert_allclose(sampler.coupling_matrix.toarray(),
                                   ising.coupling_operator().toarray())


class TestBruteForce:
    def test_ground_state_is_global_minimum(self):
        ising = random_ising(6, 2)
        solver = BruteForceIsingSolver()
        result = solver.solve(ising)
        # Verify against a fully independent enumeration.
        best = min(
            (ising.energy(np.array([1 if (v >> k) & 1 else -1 for k in range(6)]))
             for v in range(64)))
        assert result.best_energy == pytest.approx(best)

    def test_lowest_states_ordered(self):
        ising = random_ising(5, 3)
        spectrum = BruteForceIsingSolver().lowest_states(ising, num_states=4)
        assert spectrum.num_samples == 4
        assert list(spectrum.energies) == sorted(spectrum.energies)

    def test_block_enumeration_consistency(self):
        ising = random_ising(10, 4)
        small_blocks = BruteForceIsingSolver(block_bits=4).solve(ising)
        big_blocks = BruteForceIsingSolver(block_bits=12).solve(ising)
        assert small_blocks.best_energy == pytest.approx(big_blocks.best_energy)

    def test_variable_limit(self):
        ising = random_ising(6, 5)
        with pytest.raises(ConfigurationError):
            BruteForceIsingSolver(max_variables=4).solve(ising)

    def test_ground_energy_helper(self):
        ising = random_ising(4, 6)
        solver = BruteForceIsingSolver()
        assert solver.ground_energy(ising) == solver.solve(ising).best_energy


class TestTemperatureSchedule:
    def test_monotone_decreasing(self):
        schedule = geometric_temperature_schedule(10, 5.0, 0.1)
        assert schedule[0] == pytest.approx(5.0)
        assert schedule[-1] == pytest.approx(0.1)
        assert np.all(np.diff(schedule) < 0)

    def test_single_sweep(self):
        schedule = geometric_temperature_schedule(1, 5.0, 0.1)
        assert schedule.shape == (1,)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            geometric_temperature_schedule(0, 5.0, 0.1)
        with pytest.raises(ConfigurationError):
            geometric_temperature_schedule(5, -1.0, 0.1)


class TestMetropolisAnneal:
    def test_output_is_spins(self):
        ising = random_ising(6, 7)
        spins = metropolis_anneal(ising, [2.0, 1.0, 0.1],
                                  np.random.default_rng(0))
        assert set(np.unique(spins)) <= {-1, 1}

    def test_initial_spins_respected_shape(self):
        ising = random_ising(4, 8)
        with pytest.raises(ConfigurationError):
            metropolis_anneal(ising, [1.0], np.random.default_rng(0),
                              initial_spins=np.ones(3, dtype=np.int8))

    def test_low_temperature_descends(self):
        ising = random_ising(6, 9)
        rng = np.random.default_rng(1)
        start = rng.choice(np.array([-1, 1], dtype=np.int8), size=6)
        start_energy = ising.energy(start)
        out = metropolis_anneal(ising, [1e-3] * 10, rng, initial_spins=start)
        assert ising.energy(out) <= start_energy + 1e-9


class TestSimulatedAnnealing:
    def test_finds_ground_state_of_small_problem(self):
        ising = random_ising(8, 10)
        exact = BruteForceIsingSolver().ground_energy(ising)
        result = SimulatedAnnealingSolver(num_sweeps=100, num_reads=30).sample(
            ising, random_state=0)
        assert result.best_energy == pytest.approx(exact)

    def test_total_reads(self):
        ising = random_ising(5, 11)
        result = SimulatedAnnealingSolver(num_sweeps=10, num_reads=12).sample(
            ising, random_state=0)
        assert result.total_reads == 12

    def test_num_reads_override(self):
        ising = random_ising(5, 12)
        solver = SimulatedAnnealingSolver(num_sweeps=10, num_reads=4)
        result = solver.sample(ising, random_state=0, num_reads=7)
        assert result.total_reads == 7

    def test_deterministic_with_seed(self):
        ising = random_ising(6, 13)
        solver = SimulatedAnnealingSolver(num_sweeps=20, num_reads=5)
        a = solver.sample(ising, random_state=3)
        b = solver.sample(ising, random_state=3)
        np.testing.assert_array_equal(a.samples, b.samples)
        np.testing.assert_array_equal(a.num_occurrences, b.num_occurrences)

    def test_solve_alias(self):
        ising = random_ising(4, 14)
        solver = SimulatedAnnealingSolver(num_sweeps=10, num_reads=3)
        assert isinstance(solver.solve(ising, random_state=0), SolverResult)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SimulatedAnnealingSolver(num_sweeps=0)
        with pytest.raises(ConfigurationError):
            SimulatedAnnealingSolver(hot_temperature=-1.0)
