"""Randomized equivalence suite for the dense sequential-sweep kernel.

The dense kernel is only trusted because it is checked against the other two
Metropolis implementations of the repository:

* on problems whose colour classes degenerate to singletons (any complete
  coupling graph — the QuAMax logical regime), the dense and colour-class
  kernels perform the *same* sequential dynamics and consume the *same*
  per-variable Metropolis draws, so their energy trajectories and sample
  digests must agree bit-for-bit;
* on general problems the kernels' update orders differ, so agreement is
  statistical: both must reach the brute-force ground state and produce
  compatible energy distributions, as must the scalar ``sample_reference``
  loop (whose random-permutation sweeps never share a stream with either
  vectorised kernel).

The sweep over ``(num_vars, density, schedule)`` is seeded, so failures are
reproducible, and dispatch itself is pinned: dense problems must select the
dense kernel, sparse problems the colour kernel.
"""

import numpy as np
import pytest

from repro.annealer.engine import (
    KERNELS,
    BlockDiagonalSampler,
    IsingSampler,
    colour_classes,
)
from repro.exceptions import AnnealerError
from repro.ising.model import IsingModel
from repro.ising.solver import (
    BruteForceIsingSolver,
    SimulatedAnnealingSolver,
    geometric_temperature_schedule,
)


def random_ising(num_variables, seed, density=1.0):
    rng = np.random.default_rng(seed)
    couplings = {}
    for i in range(num_variables):
        for j in range(i + 1, num_variables):
            if rng.random() <= density:
                couplings[(i, j)] = float(rng.normal())
    return IsingModel(num_variables=num_variables,
                      linear=rng.normal(size=num_variables),
                      couplings=couplings)


def schedule(num_sweeps, hot=5.0, cold=0.05):
    return geometric_temperature_schedule(num_sweeps, hot, cold)


class TestKernelDispatch:
    @pytest.mark.parametrize("num_variables", [4, 12, 24])
    def test_dense_problem_selects_dense_kernel(self, num_variables):
        sampler = IsingSampler(random_ising(num_variables, 0))
        assert sampler.kernel == "auto"
        assert sampler.selected_kernel == "dense"

    @pytest.mark.parametrize("num_variables,density", [(16, 0.15), (24, 0.3)])
    def test_sparse_problem_selects_colour_kernel(self, num_variables, density):
        ising = random_ising(num_variables, 1, density=density)
        sampler = IsingSampler(ising)
        assert len(sampler.block_classes) < num_variables / 2
        assert sampler.selected_kernel == "colour"

    @pytest.mark.parametrize("num_users", [4, 8, 12])
    def test_quamax_logical_problem_selects_dense_kernel(self, num_users):
        # The ML reduction couples almost every variable pair, so its
        # colouring degenerates toward singletons — the regime the dense
        # kernel exists for (ISSUE motivation: dense logical Ising from the
        # QuAMax transform).
        from repro.mimo.system import MimoUplink
        from repro.transform.reduction import MLToIsingReducer

        link = MimoUplink(num_users=num_users, constellation="QPSK")
        channel_use = link.transmit(snr_db=20.0, random_state=1)
        ising = MLToIsingReducer().reduce(channel_use).ising
        assert IsingSampler(ising).selected_kernel == "dense"

    def test_uncoupled_problem_selects_colour_kernel(self):
        ising = IsingModel(num_variables=6, linear=np.ones(6))
        assert IsingSampler(ising).selected_kernel == "colour"

    def test_small_sparse_problems_keep_colour_kernel(self):
        # These colourings hit the class-count ratio by accident (a chain
        # colours into 2 classes, an uncoupled pair into 1) but are nowhere
        # near dense; auto must leave their seeded colour streams alone.
        chain = IsingModel(num_variables=4, linear=np.zeros(4),
                           couplings={(0, 1): 1.0, (1, 2): -1.0,
                                      (2, 3): 0.5})
        assert IsingSampler(chain).selected_kernel == "colour"
        pair = IsingModel(num_variables=2, linear=np.ones(2))
        assert IsingSampler(pair).selected_kernel == "colour"

    def test_explicit_override_wins(self):
        dense_problem = random_ising(10, 2)
        assert IsingSampler(dense_problem,
                            kernel="colour").selected_kernel == "colour"
        sparse_problem = random_ising(16, 3, density=0.2)
        assert IsingSampler(sparse_problem,
                            kernel="dense").selected_kernel == "dense"

    def test_invalid_kernel_rejected(self):
        with pytest.raises(AnnealerError):
            IsingSampler(random_ising(6, 4), kernel="sequential")
        assert KERNELS == ("auto", "dense", "colour")

    def test_multi_block_dispatch(self):
        dense = [random_ising(8, seed) for seed in (5, 6)]
        assert BlockDiagonalSampler(dense).selected_kernel == "dense"
        base = random_ising(12, 7, density=0.25)
        rng = np.random.default_rng(0)
        sparse_blocks = [
            IsingModel(num_variables=12, linear=rng.normal(size=12),
                       couplings={key: float(rng.normal())
                                  for key in base.couplings})
            for _ in range(2)
        ]
        assert BlockDiagonalSampler(sparse_blocks).selected_kernel == "colour"


class TestDenseColourSharedDynamics:
    """Bit-for-bit agreement where the two kernels share one dynamics."""

    # Seeded randomized sweep: complete graphs of several sizes, several
    # temperature schedules, several seeds.  Complete graphs guarantee the
    # all-singleton colouring under which the kernels are one algorithm.
    CASES = [(num_variables, num_sweeps, hot, seed)
             for num_variables in (5, 11, 18)
             for num_sweeps, hot in ((30, 5.0), (75, 2.0))
             for seed in (0, 1)]

    @pytest.mark.parametrize("num_variables,num_sweeps,hot,seed", CASES)
    def test_energy_trajectories_and_digests_agree(self, num_variables,
                                                   num_sweeps, hot, seed,
                                                   array_digest):
        ising = random_ising(num_variables, seed)
        assert len(colour_classes(ising)) == num_variables
        colour = IsingSampler(ising, kernel="colour")
        dense = IsingSampler(ising, kernel="dense")
        temperatures = schedule(num_sweeps, hot=hot)
        operator = ising.coupling_operator()
        # Annealing over a schedule prefix consumes a prefix of the random
        # stream, so the k-sweep samples ARE the trajectory state after k
        # sweeps of the full anneal — comparing them over several prefixes
        # compares the energy trajectories, not just the end points.
        for prefix in (1, num_sweeps // 2, num_sweeps):
            colour_spins = colour.anneal(temperatures[:prefix], 12,
                                         random_state=seed + 40)
            dense_spins = dense.anneal(temperatures[:prefix], 12,
                                       random_state=seed + 40)
            np.testing.assert_array_equal(colour_spins, dense_spins)
            np.testing.assert_array_equal(
                ising.energies(colour_spins, operator=operator),
                ising.energies(dense_spins, operator=operator))
            assert array_digest(colour_spins) == array_digest(dense_spins)

    def test_multi_block_dense_matches_colour_and_serial(self):
        rng = np.random.default_rng(8)
        base = random_ising(9, 9)
        problems = [
            IsingModel(num_variables=9, linear=rng.normal(size=9),
                       couplings={key: float(rng.normal())
                                  for key in base.couplings})
            for _ in range(3)
        ]
        temperatures = schedule(40)
        combined_dense = BlockDiagonalSampler(problems, kernel="dense").anneal(
            temperatures, 8, [np.random.default_rng(70 + b) for b in range(3)])
        combined_colour = BlockDiagonalSampler(problems, kernel="colour").anneal(
            temperatures, 8, [np.random.default_rng(70 + b) for b in range(3)])
        np.testing.assert_array_equal(combined_dense, combined_colour)
        blocked = BlockDiagonalSampler(problems)
        for b, block in enumerate(blocked.split_samples(combined_dense)):
            serial = IsingSampler(problems[b]).anneal(
                temperatures, 8, random_state=np.random.default_rng(70 + b))
            np.testing.assert_array_equal(block, serial)

    def test_cluster_moves_shared_between_kernels(self):
        ising = random_ising(10, 11)
        clusters = [np.array([0, 1, 2], dtype=np.intp),
                    np.array([6, 7], dtype=np.intp)]
        temperatures = schedule(35)
        colour = IsingSampler(ising, clusters=clusters, kernel="colour")
        dense = IsingSampler(ising, clusters=clusters, kernel="dense")
        np.testing.assert_array_equal(
            colour.anneal(temperatures, 10, random_state=13),
            dense.anneal(temperatures, 10, random_state=13))

    def test_initial_spins_honoured(self):
        ising = random_ising(8, 14)
        rng = np.random.default_rng(3)
        start = rng.choice(np.array([-1.0, 1.0]), size=(6, 8))
        temperatures = schedule(25)
        np.testing.assert_array_equal(
            IsingSampler(ising, kernel="colour").anneal(
                temperatures, 6, random_state=15, initial_spins=start),
            IsingSampler(ising, kernel="dense").anneal(
                temperatures, 6, random_state=15, initial_spins=start))

    def test_refresh_values_rebinds_dense_kernel(self):
        base = random_ising(9, 16)
        rng = np.random.default_rng(4)
        replacement = IsingModel(
            num_variables=9, linear=rng.normal(size=9),
            couplings={key: float(rng.normal()) for key in base.couplings})
        refreshed = IsingSampler(base, kernel="dense")
        refreshed.refresh_values(replacement)
        fresh = IsingSampler(replacement, classes=refreshed.classes,
                             kernel="dense")
        temperatures = schedule(30)
        np.testing.assert_array_equal(
            refreshed.anneal(temperatures, 7, random_state=17),
            fresh.anneal(temperatures, 7, random_state=17))

    def test_dense_kernel_is_deterministic(self, array_digest):
        ising = random_ising(14, 18)
        sampler = IsingSampler(ising)
        assert sampler.selected_kernel == "dense"
        temperatures = schedule(50)
        first = sampler.anneal(temperatures, 20, random_state=19)
        second = sampler.anneal(temperatures, 20, random_state=19)
        assert array_digest(first) == array_digest(second)


class TestStatisticalAgreementAcrossDynamics:
    """Where the update orders differ, agreement is statistical."""

    @pytest.mark.parametrize("density,seed", [(0.5, 21), (0.8, 22)])
    def test_forced_dense_solves_sparse_problems(self, density, seed):
        # Forcing the dense kernel onto a sparser problem changes the update
        # order (classes are no longer singletons) but must remain a correct
        # Metropolis sampler: it still finds the exact ground state.
        ising = random_ising(12, seed, density=density)
        exact = BruteForceIsingSolver().ground_energy(ising)
        sampler = IsingSampler(ising, kernel="dense")
        samples = sampler.anneal(schedule(150), 60, random_state=seed)
        assert ising.energies(samples).min() == pytest.approx(exact)

    def test_dense_solver_matches_scalar_reference_statistics(self):
        ising = random_ising(12, 23)
        exact = BruteForceIsingSolver().ground_energy(ising)
        solver = SimulatedAnnealingSolver(num_sweeps=120, num_reads=150)
        vectorised = solver.sample(ising, random_state=24)
        reference = solver.sample_reference(ising, random_state=24)

        def read_energies(result):
            return np.repeat(result.energies, result.num_occurrences)

        vec = read_energies(vectorised)
        ref = read_energies(reference)
        assert vec.size == ref.size == 150
        pooled_sem = np.hypot(vec.std(ddof=1) / np.sqrt(vec.size),
                              ref.std(ddof=1) / np.sqrt(ref.size))
        assert abs(vec.mean() - ref.mean()) <= 2.5 * max(pooled_sem, 1e-12)
        assert vectorised.best_energy == pytest.approx(exact)
        assert reference.best_energy == pytest.approx(exact)
        assert vectorised.ground_state_probability(exact, 1e-9) > 0.3
        assert reference.ground_state_probability(exact, 1e-9) > 0.3


class TestCompiledBackendSharedDynamics:
    """Compiled backends must reproduce the numpy loops' streams exactly.

    A seeded randomized sweep over problem shapes that exercise both
    kernels through ``kernel="auto"`` dispatch — dense logical-style
    problems land on the dense sequential kernel, sparse ones on the
    colour-class kernel — so a compiled backend that diverges on either
    path, or in the dispatch glue between them, fails here by digest.
    On machines without numba this covers numpy vs cext; CI's numba matrix
    entry extends the identical assertions to numba.
    """

    from repro.annealer.backends import available_backends as _avail

    COMPILED = [name for name in _avail() if name != "numpy"]
    CASES = [(num_variables, density, num_sweeps, seed)
             for num_variables, density in ((6, 1.0), (14, 1.0), (16, 0.3))
             for num_sweeps in (25, 60)
             for seed in (0, 1)]

    @pytest.mark.parametrize("backend", COMPILED)
    @pytest.mark.parametrize("num_variables,density,num_sweeps,seed", CASES)
    def test_auto_kernel_digests_agree(self, backend, num_variables, density,
                                       num_sweeps, seed, array_digest):
        ising = random_ising(num_variables, seed, density=density)
        temperatures = schedule(num_sweeps)
        reference = IsingSampler(ising, backend="numpy")
        compiled = IsingSampler(ising, backend=backend)
        assert reference.selected_kernel == compiled.selected_kernel
        expected = reference.anneal(temperatures, 10, random_state=seed + 50)
        actual = compiled.anneal(temperatures, 10, random_state=seed + 50)
        np.testing.assert_array_equal(expected, actual)
        assert array_digest(expected) == array_digest(actual)

    @pytest.mark.parametrize("backend", COMPILED)
    def test_compiled_backend_solves_to_ground_state(self, backend):
        ising = random_ising(12, 33)
        exact = BruteForceIsingSolver().ground_energy(ising)
        sampler = IsingSampler(ising, backend=backend)
        samples = sampler.anneal(schedule(150), 60, random_state=34)
        assert ising.energies(samples).min() == pytest.approx(exact)


# The embedded-shaped cluster workload, shared with the backend and golden
# suites so they all exercise one problem family.
from cluster_workloads import build_path_chain_problem as path_chain_ising  # noqa: E402


class TestEmbeddedClusterSharedDynamics:
    """Cluster (chain-flip) moves across backends: bit-identical streams.

    A seeded randomized sweep over embedded-shaped problems — path chains
    of several lengths (including chains past NumPy's short-reduction
    cutoff) plus sparse cross couplings — annealed with cluster moves under
    every available backend.  The numpy loops are the reference; the fused
    compiled cluster kernels must reproduce their per-variable/per-cluster
    draw streams exactly, over schedule prefixes (trajectories, not just
    end points), for both sweep kernels, and for multi-block packs (the
    serving shape, one pack-level compiled dispatch).
    """

    from repro.annealer.backends import available_backends as _avail

    COMPILED = [name for name in _avail() if name != "numpy"]
    CASES = [(num_variables, chain_length, num_sweeps, seed)
             for num_variables, chain_length in ((24, 4), (48, 8), (64, 16))
             for num_sweeps in (20, 45)
             for seed in (0, 1)]

    @pytest.mark.parametrize("backend", COMPILED)
    @pytest.mark.parametrize(
        "num_variables,chain_length,num_sweeps,seed", CASES)
    def test_embedded_cluster_digests_agree(self, backend, num_variables,
                                            chain_length, num_sweeps, seed,
                                            array_digest):
        ising, clusters = path_chain_ising(num_variables, chain_length,
                                           seed + 60)
        temperatures = schedule(num_sweeps)
        reference = IsingSampler(ising, clusters=clusters, backend="numpy")
        compiled = IsingSampler(ising, clusters=clusters, backend=backend)
        assert reference.selected_kernel == compiled.selected_kernel
        for prefix in (1, num_sweeps // 2, num_sweeps):
            expected = reference.anneal(temperatures[:prefix], 8,
                                        random_state=seed + 61)
            actual = compiled.anneal(temperatures[:prefix], 8,
                                     random_state=seed + 61)
            np.testing.assert_array_equal(expected, actual)
            assert array_digest(expected) == array_digest(actual)

    @pytest.mark.parametrize("backend", COMPILED)
    @pytest.mark.parametrize("kernel", ["colour", "dense"])
    def test_embedded_cluster_pack_matches_numpy_and_serial(self, backend,
                                                            kernel):
        base, clusters = path_chain_ising(20, 5, 70, density=0.12)
        rng = np.random.default_rng(71)
        problems = [
            IsingModel(num_variables=20, linear=rng.normal(size=20),
                       couplings={key: float(rng.normal())
                                  for key in base.couplings})
            for _ in range(4)
        ]
        temperatures = schedule(35)
        expected = BlockDiagonalSampler(problems, clusters=clusters,
                                        kernel=kernel,
                                        backend="numpy").anneal(
            temperatures, 6,
            [np.random.default_rng(80 + b) for b in range(4)])
        packed = BlockDiagonalSampler(problems, clusters=clusters,
                                      kernel=kernel, backend=backend)
        actual = packed.anneal(
            temperatures, 6,
            [np.random.default_rng(80 + b) for b in range(4)])
        np.testing.assert_array_equal(expected, actual)
        for b, block in enumerate(packed.split_samples(actual)):
            serial = IsingSampler(problems[b], clusters=clusters,
                                  kernel=kernel, backend=backend).anneal(
                temperatures, 6, random_state=np.random.default_rng(80 + b))
            np.testing.assert_array_equal(block, serial)

    @pytest.mark.parametrize("backend", COMPILED)
    def test_refresh_values_rebinds_cluster_kernels(self, backend):
        """ICE-style rebinds flow through the cached compiled descriptors."""
        base, clusters = path_chain_ising(24, 6, 72, density=0.1)
        rng = np.random.default_rng(73)
        replacement = IsingModel(
            num_variables=24, linear=rng.normal(size=24),
            couplings={key: float(rng.normal()) for key in base.couplings})
        temperatures = schedule(30)
        rebound = IsingSampler(base, clusters=clusters, backend=backend)
        # Populate the structure caches on the original values first.
        rebound.anneal(temperatures[:3], 3, random_state=74)
        rebound.refresh_values(replacement)
        fresh = IsingSampler(replacement, classes=rebound.classes,
                             clusters=clusters, backend="numpy")
        np.testing.assert_array_equal(
            rebound.anneal(temperatures, 5, random_state=75),
            fresh.anneal(temperatures, 5, random_state=75))
