"""Tests for the expected-BER order statistic (Eq. 9), TTB and TTF."""

import numpy as np
import pytest

from repro.exceptions import MetricsError
from repro.metrics.ttb import (
    InstanceSolutionProfile,
    expected_ber_after_anneals,
    time_to_ber,
    time_to_fer,
)
from repro.mimo.frame import frame_error_rate_from_ber


def make_profile(probabilities, bit_errors, num_bits=10, duration=2.0,
                 parallelization=1.0):
    return InstanceSolutionProfile(
        probabilities=np.asarray(probabilities, dtype=float),
        bit_errors=np.asarray(bit_errors, dtype=float),
        num_bits=num_bits,
        anneal_duration_us=duration,
        parallelization=parallelization,
    )


class TestConstruction:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(MetricsError):
            make_profile([0.5, 0.2], [0, 1])

    def test_negative_probability_rejected(self):
        with pytest.raises(MetricsError):
            make_profile([1.2, -0.2], [0, 1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MetricsError):
            make_profile([1.0], [0, 1])

    def test_floor_ber(self):
        profile = make_profile([0.3, 0.7], [0, 3])
        assert profile.floor_ber == 0.0
        profile = make_profile([0.3, 0.7], [2, 3])
        assert profile.floor_ber == pytest.approx(0.2)


class TestExpectedBerEquation9:
    def test_single_solution(self):
        profile = make_profile([1.0], [2], num_bits=10)
        for anneals in (1, 5, 100):
            assert profile.expected_ber(anneals) == pytest.approx(0.2)

    def test_one_anneal_is_mixture_average(self):
        # With one anneal, the expected BER is just the probability-weighted
        # average of the solutions' BERs.
        profile = make_profile([0.25, 0.75], [0, 4], num_bits=10)
        assert profile.expected_ber(1) == pytest.approx(0.75 * 0.4)

    def test_two_solution_closed_form(self):
        # Best solution (0 errors) has probability p; after N anneals the
        # probability of never seeing it is (1-p)^N, contributing the worse
        # solution's BER.
        p = 0.3
        profile = make_profile([p, 1 - p], [0, 5], num_bits=10)
        for anneals in (1, 2, 7, 20):
            expected = (1 - p) ** anneals * 0.5
            assert profile.expected_ber(anneals) == pytest.approx(expected)

    def test_monotone_nonincreasing_in_anneals(self):
        profile = make_profile([0.05, 0.2, 0.3, 0.45], [0, 1, 2, 6], num_bits=12)
        values = [profile.expected_ber(n) for n in (1, 2, 4, 8, 16, 64, 256)]
        assert all(a >= b - 1e-15 for a, b in zip(values, values[1:]))

    def test_converges_to_floor(self):
        profile = make_profile([0.1, 0.9], [1, 4], num_bits=10)
        assert profile.expected_ber(10_000) == pytest.approx(profile.floor_ber,
                                                             abs=1e-6)

    def test_functional_wrapper(self):
        value = expected_ber_after_anneals([0.5, 0.5], [0, 2], 10, 3)
        profile = make_profile([0.5, 0.5], [0, 2], num_bits=10)
        assert value == pytest.approx(profile.expected_ber(3))

    def test_invalid_anneal_count(self):
        profile = make_profile([1.0], [0])
        with pytest.raises(Exception):
            profile.expected_ber(0)


class TestTimeToBer:
    def test_immediate_when_first_anneal_suffices(self):
        profile = make_profile([0.9, 0.1], [0, 0], num_bits=10)
        assert profile.anneals_to_ber(1e-6) == 1
        assert profile.time_to_ber(1e-6) == pytest.approx(2.0)

    def test_unreachable_when_floor_above_target(self):
        profile = make_profile([0.6, 0.4], [2, 3], num_bits=10)
        assert profile.anneals_to_ber(1e-6) is None
        assert profile.time_to_ber(1e-6) == np.inf

    def test_anneal_count_is_minimal(self):
        profile = make_profile([0.2, 0.8], [0, 5], num_bits=10)
        target = 1e-3
        anneals = profile.anneals_to_ber(target)
        assert profile.expected_ber(anneals) <= target
        assert profile.expected_ber(anneals - 1) > target

    def test_parallelization_divides_time(self):
        serial = make_profile([0.2, 0.8], [0, 5], parallelization=1.0)
        parallel = make_profile([0.2, 0.8], [0, 5], parallelization=4.0)
        assert parallel.time_to_ber(1e-3) == pytest.approx(
            serial.time_to_ber(1e-3) / 4.0)
        assert parallel.time_to_ber(1e-3, use_parallelization=False) == \
            pytest.approx(serial.time_to_ber(1e-3))

    def test_tighter_target_takes_longer(self):
        profile = make_profile([0.2, 0.8], [0, 5], num_bits=10)
        assert profile.time_to_ber(1e-6) >= profile.time_to_ber(1e-2)

    def test_max_anneals_cap(self):
        profile = make_profile([1e-4, 1.0 - 1e-4], [0, 5], num_bits=10)
        assert profile.time_to_ber(1e-9, max_anneals=10) == np.inf

    def test_wrapper_functions(self):
        profile = make_profile([0.5, 0.5], [0, 2], num_bits=10)
        assert time_to_ber(profile, 1e-3) == profile.time_to_ber(1e-3)
        assert time_to_fer(profile, 1e-3, frame_size_bytes=100) == \
            profile.time_to_fer(1e-3, frame_size_bytes=100)


class TestTimeToFer:
    def test_consistency_with_ber(self):
        profile = make_profile([0.3, 0.7], [0, 4], num_bits=10)
        anneals = 8
        fer = profile.expected_fer(anneals, frame_size_bytes=50)
        ber = profile.expected_ber(anneals)
        assert fer == pytest.approx(frame_error_rate_from_ber(ber, 50))

    def test_larger_frames_take_longer(self):
        profile = make_profile([0.2, 0.8], [0, 3], num_bits=12)
        assert (profile.time_to_fer(1e-3, frame_size_bytes=1500)
                >= profile.time_to_fer(1e-3, frame_size_bytes=50))

    def test_unreachable_returns_infinity(self):
        profile = make_profile([1.0], [3], num_bits=10)
        assert profile.time_to_fer(1e-4, frame_size_bytes=1500) == np.inf

    def test_reachable_case(self):
        profile = make_profile([0.5, 0.5], [0, 2], num_bits=10)
        ttf = profile.time_to_fer(1e-3, frame_size_bytes=50)
        assert np.isfinite(ttf)
        assert ttf >= profile.anneal_duration_us


class TestFromAnnealResult:
    def test_profile_from_real_run(self):
        from repro.annealer.chimera import ChimeraGraph
        from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
        from repro.mimo.system import MimoUplink
        from repro.transform.reduction import MLToIsingReducer

        link = MimoUplink(num_users=4, constellation="BPSK")
        channel_use = link.transmit(random_state=0)
        reduced = MLToIsingReducer().reduce(channel_use)
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4))
        run = machine.run(reduced.ising, AnnealerParameters(num_anneals=20),
                          random_state=0)
        profile = InstanceSolutionProfile.from_anneal_result(run, reduced)
        assert profile.num_bits == 4
        assert profile.probabilities.sum() == pytest.approx(1.0)
        assert profile.num_solutions == run.solutions.num_samples
        assert np.isfinite(profile.expected_ber(5))
