"""Tests for Time-to-Solution and error-rate metrics."""

import numpy as np
import pytest

from repro.exceptions import MetricsError
from repro.metrics.error_rates import bit_error_rate, bit_errors, count_symbol_errors
from repro.metrics.statistics import DistributionSummary, summarize
from repro.metrics.tts import time_to_solution


class TestBitErrorCounting:
    def test_bit_errors(self):
        assert bit_errors([1, 0, 1, 1], [1, 1, 1, 0]) == 2

    def test_bit_error_rate(self):
        assert bit_error_rate([1, 0, 1, 1], [1, 1, 1, 0]) == pytest.approx(0.5)

    def test_identical_is_zero(self):
        assert bit_error_rate([0, 1], [0, 1]) == 0.0

    def test_empty_is_zero(self):
        assert bit_error_rate([], []) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(MetricsError):
            bit_errors([1, 0], [1])

    def test_symbol_errors(self):
        assert count_symbol_errors([1 + 1j, -1 - 1j], [1 + 1j, 1 - 1j]) == 1

    def test_symbol_errors_tolerance(self):
        assert count_symbol_errors([1 + 0j], [1 + 1e-12j]) == 0

    def test_symbol_length_mismatch_rejected(self):
        with pytest.raises(MetricsError):
            count_symbol_errors([1], [1, 2])


class TestTimeToSolution:
    def test_formula(self):
        # P0 = 0.1, P = 0.99: repeats = ln(0.01)/ln(0.9) ~= 43.7.
        expected = 1.0 * np.log(0.01) / np.log(0.9)
        assert time_to_solution(0.1, 1.0) == pytest.approx(expected)

    def test_single_anneal_suffices(self):
        assert time_to_solution(0.999, 2.0) == pytest.approx(2.0)

    def test_zero_probability_is_infinite(self):
        assert time_to_solution(0.0, 1.0) == np.inf

    def test_scales_with_anneal_time(self):
        assert time_to_solution(0.3, 10.0) == pytest.approx(
            10.0 * time_to_solution(0.3, 1.0))

    def test_parallelization_divides_time(self):
        serial = time_to_solution(0.2, 1.0)
        parallel = time_to_solution(0.2, 1.0, parallelization=4.0)
        assert parallel == pytest.approx(serial / 4.0)

    def test_higher_probability_is_faster(self):
        assert time_to_solution(0.5, 1.0) < time_to_solution(0.05, 1.0)

    def test_target_probability_monotone(self):
        assert (time_to_solution(0.1, 1.0, target_probability=0.999)
                > time_to_solution(0.1, 1.0, target_probability=0.9))

    def test_invalid_inputs(self):
        with pytest.raises(Exception):
            time_to_solution(1.5, 1.0)
        with pytest.raises(Exception):
            time_to_solution(0.5, -1.0)
        with pytest.raises(Exception):
            time_to_solution(0.5, 1.0, target_probability=1.0)


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.median == pytest.approx(3.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    def test_percentiles_ordered(self):
        summary = summarize(np.arange(100.0))
        assert summary.percentile_10 < summary.median < summary.percentile_90

    def test_empty_rejected(self):
        with pytest.raises(MetricsError):
            summarize([])

    def test_infinite_values_kept_by_default(self):
        summary = summarize([1.0, np.inf])
        assert summary.mean == np.inf

    def test_ignore_infinite(self):
        summary = summarize([1.0, 3.0, np.inf], ignore_infinite=True)
        assert summary.count == 2
        assert summary.mean == pytest.approx(2.0)

    def test_all_infinite(self):
        summary = summarize([np.inf, np.inf], ignore_infinite=True)
        assert summary.count == 0
        assert summary.median == np.inf

    def test_as_dict(self):
        summary = summarize([1.0, 2.0])
        data = summary.as_dict()
        assert data["count"] == 2
        assert set(data) == {"count", "mean", "median", "p10", "p90", "min", "max"}
