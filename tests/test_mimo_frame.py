"""Tests for repro.mimo.frame."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mimo.frame import Frame, ber_required_for_fer, frame_error_rate_from_ber


class TestFrameErrorRateFromBer:
    def test_zero_ber_means_zero_fer(self):
        assert frame_error_rate_from_ber(0.0, 1500) == 0.0

    def test_one_ber_means_one_fer(self):
        assert frame_error_rate_from_ber(1.0, 50) == pytest.approx(1.0)

    def test_paper_headline_point(self):
        # BER 1e-6 over a 1,500 byte frame gives FER ~1.2e-2; the paper's
        # 10^-4 FER headline needs BER well below 1e-8 for full frames, or
        # the 1e-6 BER on short frames.
        fer = frame_error_rate_from_ber(1e-6, 1500)
        assert fer == pytest.approx(1.0 - (1.0 - 1e-6) ** 12000, rel=1e-9)

    def test_monotone_in_frame_size(self):
        small = frame_error_rate_from_ber(1e-5, 50)
        large = frame_error_rate_from_ber(1e-5, 1500)
        assert large > small

    def test_monotone_in_ber(self):
        low = frame_error_rate_from_ber(1e-6, 200)
        high = frame_error_rate_from_ber(1e-4, 200)
        assert high > low

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            frame_error_rate_from_ber(1.5, 100)
        with pytest.raises(ConfigurationError):
            frame_error_rate_from_ber(0.1, 0)


class TestBerRequiredForFer:
    def test_roundtrip(self):
        for target_fer in (1e-4, 1e-3, 0.1):
            for frame_size in (50, 1500):
                ber = ber_required_for_fer(target_fer, frame_size)
                assert frame_error_rate_from_ber(ber, frame_size) == pytest.approx(
                    target_fer, rel=1e-6)

    def test_smaller_frames_allow_higher_ber(self):
        assert (ber_required_for_fer(1e-4, 50)
                > ber_required_for_fer(1e-4, 1500))

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError):
            ber_required_for_fer(0.0, 100)


class TestFrame:
    def test_size_bits(self):
        assert Frame(size_bytes=50).size_bits == 400

    def test_accumulation_and_completion(self):
        frame = Frame(size_bytes=1)
        assert not frame.is_complete
        frame.add([1, 0, 1, 0], [1, 0, 1, 0])
        frame.add([1, 1, 1, 1], [1, 1, 1, 1])
        assert frame.bits_accumulated == 8
        assert frame.is_complete
        assert not frame.is_errored()
        assert frame.bit_errors() == 0

    def test_bit_errors_counted(self):
        frame = Frame(size_bytes=1)
        frame.add([1, 0, 1, 0, 1, 0, 1, 0], [1, 1, 1, 0, 1, 0, 0, 0])
        assert frame.bit_errors() == 2
        assert frame.is_errored()
        assert frame.bit_error_rate() == pytest.approx(0.25)

    def test_errors_beyond_frame_size_ignored(self):
        frame = Frame(size_bytes=1)
        frame.add([0] * 8, [0] * 8)
        # These extra bits fall outside the frame and must not count.
        frame.add([1, 1], [0, 0])
        assert frame.bit_errors() == 0

    def test_mismatched_lengths_rejected(self):
        frame = Frame(size_bytes=1)
        with pytest.raises(ConfigurationError):
            frame.add([1, 0], [1])

    def test_empty_frame_statistics(self):
        frame = Frame(size_bytes=10)
        assert frame.bit_errors() == 0
        assert frame.bit_error_rate() == 0.0

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            Frame(size_bytes=0)
