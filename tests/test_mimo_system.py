"""Tests for repro.mimo.system."""

import numpy as np
import pytest

from repro.channel.models import FixedChannel, RandomPhaseChannel
from repro.channel.noise import measure_snr_db
from repro.exceptions import ConfigurationError
from repro.mimo.system import ChannelUse, MimoUplink
from repro.modulation import QPSK


class TestMimoUplinkConstruction:
    def test_defaults_square(self):
        link = MimoUplink(num_users=4, constellation="QPSK")
        assert link.num_rx_antennas == 4
        assert link.bits_per_channel_use == 8

    def test_constellation_object_accepted(self):
        link = MimoUplink(num_users=2, constellation=QPSK)
        assert link.constellation is QPSK

    def test_more_rx_than_users_allowed(self):
        link = MimoUplink(num_users=2, constellation="BPSK", num_rx_antennas=8)
        assert link.num_rx_antennas == 8

    def test_fewer_rx_than_users_rejected(self):
        with pytest.raises(ConfigurationError):
            MimoUplink(num_users=4, constellation="BPSK", num_rx_antennas=2)

    def test_invalid_constellation_rejected(self):
        with pytest.raises(Exception):
            MimoUplink(num_users=2, constellation=42)


class TestTransmit:
    def test_noiseless_received_equals_hv(self):
        link = MimoUplink(num_users=3, constellation="QPSK")
        channel_use = link.transmit(random_state=0)
        expected = channel_use.channel @ channel_use.transmitted_symbols
        np.testing.assert_allclose(channel_use.received, expected)
        assert channel_use.noise_variance == 0.0
        assert channel_use.snr_db is None

    def test_snr_is_respected_statistically(self):
        link = MimoUplink(num_users=4, constellation="QPSK", num_rx_antennas=4)
        measured = []
        rng = np.random.default_rng(0)
        for _ in range(50):
            channel_use = link.transmit(snr_db=15.0, random_state=rng)
            measured.append(measure_snr_db(
                channel_use.channel, channel_use.constellation.average_energy,
                channel_use.noise_variance))
        assert np.mean(measured) == pytest.approx(15.0, abs=0.5)

    def test_explicit_bits_used(self):
        link = MimoUplink(num_users=2, constellation="BPSK")
        channel_use = link.transmit(bits=[1, 0], random_state=1)
        np.testing.assert_array_equal(channel_use.transmitted_bits, [1, 0])
        np.testing.assert_array_equal(channel_use.transmitted_symbols, [1, -1])

    def test_explicit_channel_used(self):
        matrix = np.eye(2, dtype=complex)
        link = MimoUplink(num_users=2, constellation="BPSK")
        channel_use = link.transmit(bits=[1, 1], channel=matrix)
        np.testing.assert_array_equal(channel_use.channel, matrix)
        np.testing.assert_array_equal(channel_use.received, [1, 1])

    def test_deterministic_with_seed(self):
        link = MimoUplink(num_users=3, constellation="16-QAM")
        a = link.transmit(snr_db=20.0, random_state=9)
        b = link.transmit(snr_db=20.0, random_state=9)
        np.testing.assert_array_equal(a.received, b.received)
        np.testing.assert_array_equal(a.transmitted_bits, b.transmitted_bits)

    def test_transmit_many(self):
        link = MimoUplink(num_users=2, constellation="BPSK")
        uses = link.transmit_many(4, random_state=0, snr_db=10.0)
        assert len(uses) == 4
        assert not np.array_equal(uses[0].channel, uses[1].channel)

    def test_channel_model_is_used(self):
        link = MimoUplink(num_users=3, constellation="BPSK",
                          channel_model=RandomPhaseChannel())
        channel_use = link.transmit(random_state=0)
        np.testing.assert_allclose(np.abs(channel_use.channel), 1.0)


class TestChannelUse:
    def make(self):
        link = MimoUplink(num_users=2, constellation="QPSK")
        return link.transmit(snr_db=20.0, random_state=0)

    def test_properties(self):
        channel_use = self.make()
        assert channel_use.num_rx == 2
        assert channel_use.num_tx == 2
        assert channel_use.num_bits == 4

    def test_dimension_validation(self):
        with pytest.raises(ConfigurationError):
            ChannelUse(channel=np.eye(2, dtype=complex),
                       received=np.zeros(3, dtype=complex),
                       constellation=QPSK)

    def test_bit_length_validation(self):
        with pytest.raises(ConfigurationError):
            ChannelUse(channel=np.eye(2, dtype=complex),
                       received=np.zeros(2, dtype=complex),
                       constellation=QPSK,
                       transmitted_bits=[1, 0, 1])

    def test_with_noise_realization(self):
        channel_use = self.make()
        noise = np.array([0.1 + 0.1j, -0.2j])
        renoised = channel_use.with_noise_realization(noise, 0.05, 25.0)
        clean = channel_use.channel @ channel_use.transmitted_symbols
        np.testing.assert_allclose(renoised.received, clean + noise)
        assert renoised.snr_db == 25.0
        # Original is unchanged (frozen dataclass semantics).
        assert channel_use.snr_db == 20.0

    def test_with_noise_requires_ground_truth(self):
        channel_use = ChannelUse(channel=np.eye(2, dtype=complex),
                                 received=np.zeros(2, dtype=complex),
                                 constellation=QPSK)
        with pytest.raises(ConfigurationError):
            channel_use.with_noise_realization(np.zeros(2), 0.0, None)
