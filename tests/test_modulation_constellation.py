"""Tests for repro.modulation.constellation and mapper."""

import numpy as np
import pytest

from repro.exceptions import ModulationError
from repro.modulation import (
    BPSK,
    QAM16,
    QAM64,
    QPSK,
    Constellation,
    SymbolMapper,
    get_constellation,
)
from repro.modulation.constellation import available_constellations


class TestConstellationBasics:
    @pytest.mark.parametrize("constellation,size,bits", [
        (BPSK, 2, 1), (QPSK, 4, 2), (QAM16, 16, 4), (QAM64, 64, 6),
    ])
    def test_sizes(self, constellation, size, bits):
        assert constellation.size == size
        assert constellation.bits_per_symbol == bits
        assert len(constellation) == size

    def test_bpsk_points(self):
        assert set(BPSK.points) == {-1 + 0j, 1 + 0j}

    def test_qpsk_points(self):
        assert set(QPSK.points) == {-1 - 1j, -1 + 1j, 1 - 1j, 1 + 1j}

    def test_qam16_lattice(self):
        reals = sorted({p.real for p in QAM16.points})
        assert reals == [-3, -1, 1, 3]
        imags = sorted({p.imag for p in QAM16.points})
        assert imags == [-3, -1, 1, 3]

    def test_qam16_points_distinct(self):
        assert len(set(QAM16.points)) == 16

    @pytest.mark.parametrize("constellation", [BPSK, QPSK, QAM16, QAM64])
    def test_average_energy_positive(self, constellation):
        assert constellation.average_energy > 0

    def test_qam16_average_energy(self):
        assert QAM16.average_energy == pytest.approx(10.0)

    def test_qpsk_average_energy(self):
        assert QPSK.average_energy == pytest.approx(2.0)

    def test_min_distance(self):
        assert BPSK.min_distance == pytest.approx(2.0)
        assert QAM16.min_distance == pytest.approx(2.0)

    def test_wrong_point_count_rejected(self):
        with pytest.raises(ModulationError):
            Constellation(name="bad", bits_per_symbol=2, points=np.array([1, -1]))


class TestGrayLabelling:
    @pytest.mark.parametrize("constellation", [QPSK, QAM16, QAM64])
    def test_nearest_neighbours_differ_by_one_bit(self, constellation):
        # The defining property of a Gray-coded constellation.
        for symbol in constellation.points:
            bits = constellation.symbol_to_bits(symbol)
            distances = np.abs(constellation.points - symbol)
            nearest = constellation.points[
                (distances > 0) & (distances <= constellation.min_distance + 1e-9)]
            for neighbour in nearest:
                other = constellation.symbol_to_bits(neighbour)
                assert int(np.count_nonzero(bits != other)) == 1


class TestMapping:
    @pytest.mark.parametrize("constellation", [BPSK, QPSK, QAM16, QAM64])
    def test_bits_symbol_roundtrip(self, constellation):
        for label in range(constellation.size):
            bits = np.array([(label >> (constellation.bits_per_symbol - 1 - k)) & 1
                             for k in range(constellation.bits_per_symbol)],
                            dtype=np.uint8)
            symbol = constellation.bits_to_symbol(bits)
            np.testing.assert_array_equal(constellation.symbol_to_bits(symbol), bits)

    def test_modulate_demodulate_roundtrip(self):
        rng = np.random.default_rng(0)
        for constellation in (BPSK, QPSK, QAM16, QAM64):
            bits = rng.integers(0, 2, size=constellation.bits_per_symbol * 5)
            symbols = constellation.modulate(bits)
            np.testing.assert_array_equal(constellation.demodulate(symbols), bits)

    def test_modulate_rejects_partial_symbol(self):
        with pytest.raises(ModulationError):
            QPSK.modulate([1, 0, 1])

    def test_symbol_to_bits_rejects_non_point(self):
        with pytest.raises(ModulationError):
            QPSK.symbol_to_bits(0.5 + 0.5j)

    def test_hard_decision_snaps_to_nearest(self):
        assert QAM16.hard_decision(2.6 + 0.4j) == 3 + 1j
        assert BPSK.hard_decision(-0.2) == -1

    def test_demodulate_empty(self):
        assert QPSK.demodulate([]).size == 0


class TestRegistry:
    @pytest.mark.parametrize("name,expected", [
        ("bpsk", "BPSK"), ("QPSK", "QPSK"), ("16-QAM", "16-QAM"),
        ("16qam", "16-QAM"), ("qam64", "64-QAM"),
    ])
    def test_lookup(self, name, expected):
        assert get_constellation(name).name == expected

    def test_unknown_rejected(self):
        with pytest.raises(ModulationError):
            get_constellation("256-QAM")

    def test_available_lists_all(self):
        names = available_constellations()
        assert {"BPSK", "QPSK", "16-QAM", "64-QAM"} <= set(names)


class TestSymbolMapper:
    def test_bits_per_channel_use(self):
        mapper = SymbolMapper(constellation=QPSK, num_users=5)
        assert mapper.bits_per_channel_use == 10

    def test_map_demap_roundtrip(self):
        mapper = SymbolMapper(constellation=QAM16, num_users=3)
        rng = np.random.default_rng(1)
        bits = mapper.random_bits(rng)
        symbols = mapper.map_bits(bits)
        assert symbols.shape == (3,)
        np.testing.assert_array_equal(mapper.demap_symbols(symbols), bits)

    def test_wrong_bit_count_rejected(self):
        mapper = SymbolMapper(constellation=BPSK, num_users=2)
        with pytest.raises(Exception):
            mapper.map_bits([1, 0, 1])

    def test_wrong_symbol_count_rejected(self):
        mapper = SymbolMapper(constellation=BPSK, num_users=2)
        with pytest.raises(ModulationError):
            mapper.demap_symbols([1 + 0j])

    def test_invalid_num_users(self):
        with pytest.raises(ModulationError):
            SymbolMapper(constellation=BPSK, num_users=0)

    def test_random_bits_shape_and_values(self):
        mapper = SymbolMapper(constellation=QPSK, num_users=4)
        bits = mapper.random_bits(np.random.default_rng(0), num_channel_uses=3)
        assert bits.size == 3 * 8
        assert set(np.unique(bits)) <= {0, 1}

    def test_random_bits_invalid_count(self):
        mapper = SymbolMapper(constellation=QPSK, num_users=4)
        with pytest.raises(ModulationError):
            mapper.random_bits(np.random.default_rng(0), num_channel_uses=0)
