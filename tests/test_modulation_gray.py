"""Tests for repro.modulation.gray."""

import numpy as np
import pytest

from repro.exceptions import ModulationError
from repro.modulation.gray import (
    binary_to_gray,
    bits_from_int,
    bits_to_int,
    gray_decode,
    gray_encode,
    gray_to_binary,
    pam_gray_levels,
)


class TestGrayEncodeDecode:
    def test_known_values(self):
        # Standard reflected binary code for 0..7.
        assert [gray_encode(v) for v in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_roundtrip(self):
        for value in range(64):
            assert gray_decode(gray_encode(value)) == value

    def test_adjacent_values_differ_by_one_bit(self):
        for value in range(31):
            diff = gray_encode(value) ^ gray_encode(value + 1)
            assert bin(diff).count("1") == 1

    def test_negative_rejected(self):
        with pytest.raises(ModulationError):
            gray_encode(-1)
        with pytest.raises(ModulationError):
            gray_decode(-2)


class TestBitsConversion:
    def test_bits_from_int_msb_first(self):
        np.testing.assert_array_equal(bits_from_int(6, 4), [0, 1, 1, 0])

    def test_bits_to_int_inverse(self):
        for value in range(16):
            assert bits_to_int(bits_from_int(value, 4)) == value

    def test_value_too_large_rejected(self):
        with pytest.raises(ModulationError):
            bits_from_int(16, 4)

    def test_zero_width_rejected(self):
        with pytest.raises(ModulationError):
            bits_from_int(0, 0)

    def test_non_binary_rejected(self):
        with pytest.raises(ModulationError):
            bits_to_int([0, 2])

    def test_2d_rejected(self):
        with pytest.raises(ModulationError):
            bits_to_int(np.zeros((2, 2)))


class TestBinaryGrayBitVectors:
    def test_binary_to_gray_known(self):
        np.testing.assert_array_equal(binary_to_gray([1, 1]), [1, 0])
        np.testing.assert_array_equal(binary_to_gray([1, 0]), [1, 1])

    def test_roundtrip(self):
        for value in range(16):
            bits = bits_from_int(value, 4)
            np.testing.assert_array_equal(gray_to_binary(binary_to_gray(bits)), bits)


class TestPamGrayLevels:
    def test_4pam_convention(self):
        levels = pam_gray_levels(2)
        # Labels 00, 01, 11, 10 map to -3, -1, +1, +3.
        assert levels[0b00] == -3
        assert levels[0b01] == -1
        assert levels[0b11] == 1
        assert levels[0b10] == 3

    def test_2pam(self):
        levels = pam_gray_levels(1)
        assert levels[0] == -1 and levels[1] == 1

    def test_8pam_levels_are_odd_integers(self):
        levels = np.sort(pam_gray_levels(3))
        np.testing.assert_array_equal(levels, [-7, -5, -3, -1, 1, 3, 5, 7])

    def test_8pam_gray_property(self):
        # Neighbouring amplitudes differ in exactly one label bit.
        levels = pam_gray_levels(3)
        by_amplitude = {level: label for label, level in enumerate(levels)}
        amplitudes = sorted(by_amplitude)
        for first, second in zip(amplitudes, amplitudes[1:]):
            diff = by_amplitude[first] ^ by_amplitude[second]
            assert bin(diff).count("1") == 1

    def test_invalid_bits_rejected(self):
        with pytest.raises(ModulationError):
            pam_gray_levels(0)
