"""Exporters and the breakdown report over a real traced serving run.

One module-scoped traced run feeds every test: the Chrome trace-event
render (Perfetto-loadable structure, nested overhead/anneal slices, shed
markers), the lossless JSONL round-trip, the Prometheus text exposition of
the serving counters, the ``python -m repro.obs.report`` CLI, and the
strict-JSON safety of the telemetry snapshot (satellite of the NaN fix:
``json.dumps(..., allow_nan=False)`` must round-trip every report).
"""

import json
import math

import numpy as np
import pytest

from repro.annealer.chimera import ChimeraGraph
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.cran.jobs import DecodeJob
from repro.cran.service import CranService
from repro.cran.telemetry import TelemetryRecorder
from repro.cran.tracing import JOB_STAGES
from repro.decoder.quamax import QuAMaxDecoder
from repro.mimo.system import MimoUplink
from repro.obs import (
    build_report,
    prometheus_metrics,
    read_jsonl,
    render,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.report import main as report_main


@pytest.fixture(scope="module")
def decoder():
    return QuAMaxDecoder(QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
                         AnnealerParameters(num_anneals=8))


def make_jobs(count, slack_us=1e6):
    link = MimoUplink(num_users=2, constellation="BPSK")
    rng = np.random.default_rng(7)
    return [
        DecodeJob(job_id=i, user_id=0, frame=0, subcarrier=i,
                  channel_use=link.transmit(random_state=rng),
                  arrival_time_us=40.0 * i,
                  deadline_us=40.0 * i + slack_us, seed=500 + i)
        for i in range(count)
    ]


@pytest.fixture(scope="module")
def traced_report(decoder):
    service = CranService(decoder, max_batch=3, max_wait_us=500.0,
                          tracing=True)
    return service.run(make_jobs(10))


class TestChromeTrace:
    def test_structure_loads_as_strict_json(self, traced_report):
        trace = to_chrome_trace(traced_report.trace)
        assert trace["displayTimeUnit"] == "ms"
        # Perfetto rejects NaN/Infinity; the render must be strict JSON.
        encoded = json.dumps(trace, allow_nan=False)
        assert json.loads(encoded) == trace

    def test_pack_spans_with_nested_service_split(self, traced_report):
        trace = to_chrome_trace(traced_report.trace)
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        packs = [e for e in spans if e["name"].startswith("pack ")]
        assert packs and all(e["dur"] >= 0.0 for e in spans)
        # Every pack span nests an overhead + anneal split that exactly
        # tiles it, on the same worker track.
        overheads = [e for e in spans if e["name"] == "overhead"]
        anneals = [e for e in spans if e["name"] == "anneal"]
        assert len(overheads) == len(anneals) == len(packs)
        for pack, over, ann in zip(packs, overheads, anneals):
            assert over["tid"] == ann["tid"] == pack["tid"]
            assert over["ts"] == pack["ts"]
            assert ann["ts"] == pytest.approx(over["ts"] + over["dur"])
            assert over["dur"] + ann["dur"] == pytest.approx(pack["dur"])

    def test_queue_spans_and_thread_names(self, traced_report):
        trace = to_chrome_trace(traced_report.trace)
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        queued = [e for e in spans if "queued" in e["name"]]
        assert len(queued) == len(traced_report.results)
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "M"}
        assert any(name.startswith("worker") for name in names)
        assert any(name.startswith("cell") for name in names)

    def test_write_chrome_trace(self, traced_report, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json",
                                  traced_report.trace)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == to_chrome_trace(traced_report.trace)


class TestJsonl:
    def test_round_trip_is_lossless(self, traced_report, tmp_path):
        path = write_jsonl(tmp_path / "trace.jsonl", traced_report.trace)
        assert read_jsonl(path) == list(traced_report.trace)

    def test_one_strict_json_object_per_line(self, traced_report):
        lines = to_jsonl(traced_report.trace).splitlines()
        assert len(lines) == len(traced_report.trace)
        for line in lines:
            record = json.loads(line)
            assert "name" in record and "ts_us" in record


class TestPrometheus:
    def test_serving_counters_render(self, traced_report):
        text = prometheus_metrics(traced_report)  # a report works directly
        assert f"cran_jobs_completed_total {len(traced_report.results)}" \
            in text
        assert "cran_flush_reason_total{reason=" in text
        assert 'cran_latency_us{quantile="99"}' in text
        assert "cran_sampler_cache_hits_total" in text
        assert "cran_worker_shard_batches_total{worker=" in text
        # Exposition-format hygiene: every sample has HELP/TYPE headers.
        for line in text.splitlines():
            assert line.startswith(("# HELP", "# TYPE", "cran_"))

    def test_bare_snapshot_renders_without_enriched_sections(self):
        text = prometheus_metrics(TelemetryRecorder().snapshot())
        assert "cran_jobs_completed_total 0" in text
        assert "cran_sampler_cache" not in text
        assert "cran_ingress" not in text


class TestReportCli:
    def test_build_report_is_an_exact_decomposition(self, traced_report):
        report = build_report(traced_report.trace)
        completed = len(traced_report.results)
        assert report["jobs"] == {"completed": completed, "shed": 0,
                                  "incomplete": 0}
        # The stages are an exact accounting of the end-to-end latency.
        assert report["max_accounting_error_us"] == pytest.approx(0.0,
                                                                  abs=1e-6)
        shares = sum(report["stages"][stage]["share"]
                     for stage in JOB_STAGES)
        assert shares == pytest.approx(1.0)
        assert all(report["stages"][stage]["count"] == completed
                   for stage in (*JOB_STAGES, "latency"))
        worst = report["critical_path"]
        assert worst and worst[0]["latency_us"] == max(
            entry["latency_us"] for entry in worst)
        assert all(entry["dominant_stage"] in JOB_STAGES for entry in worst)

    def test_cli_renders_breakdown(self, traced_report, tmp_path, capsys):
        path = write_jsonl(tmp_path / "trace.jsonl", traced_report.trace)
        assert report_main([str(path), "--worst", "3"]) == 0
        out = capsys.readouterr().out
        assert "per-stage latency breakdown" in out
        assert "critical path — 3 slowest jobs" in out
        assert "accounting check" in out
        for stage in JOB_STAGES:
            assert stage in out

    def test_cli_rejects_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert report_main([str(empty)]) == 1
        assert "empty" in capsys.readouterr().err

    def test_render_matches_build_report(self, traced_report):
        text = render(build_report(traced_report.trace))
        assert f"jobs: {len(traced_report.results)} completed" in text


class TestSnapshotJsonSafety:
    def test_report_telemetry_is_strict_json(self, traced_report):
        # The satellite of the NaN fix: a full enriched telemetry snapshot
        # (workers, sampler cache, latency stats) survives strict encoding.
        # JSON object keys are strings, so compare through a key-normalising
        # re-encode rather than against the raw dict (the batch-fill
        # histogram is keyed by int fill).
        encoded = json.dumps(traced_report.telemetry, allow_nan=False)
        assert json.loads(encoded) == json.loads(
            json.dumps(traced_report.telemetry))

    def test_empty_run_telemetry_is_strict_json(self, decoder):
        report = CranService(decoder, tracing=True).run([])
        encoded = json.dumps(report.telemetry, allow_nan=False)
        decoded = json.loads(encoded)
        assert decoded["latency_us"]["mean"] is None
        assert decoded["queue_delay_us_mean"] is None

    def test_trace_events_have_no_nan_payloads(self, traced_report):
        for event in traced_report.trace:
            json.dumps(event.to_dict(), allow_nan=False)
            assert math.isfinite(event.ts_us)
