"""The optional phase profiler: off by default, exact, bit-stream-neutral.

The compute layer (machine, engine, backends, decoder) is instrumented
with ``PROFILER.phase(...)`` hooks.  These tests pin the contract: a
disabled profiler is a shared no-op (zero allocation per hook), enabling
it attributes wall time to the expected phases, worker-style deltas merge
losslessly — and, the property everything else depends on, profiling never
perturbs a seeded decode's bit stream.
"""

import numpy as np
import pytest

from repro.annealer.chimera import ChimeraGraph
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.mimo.system import MimoUplink
from repro.decoder.quamax import QuAMaxDecoder
from repro.obs.profiling import PROFILER, PhaseProfiler


@pytest.fixture(autouse=True)
def clean_global_profiler():
    """Leave the process-global profiler exactly as we found it."""
    was_enabled = PROFILER.enabled
    baseline = PROFILER.raw()
    yield
    PROFILER.disable()
    PROFILER.reset()
    PROFILER.merge(baseline)
    if was_enabled:
        PROFILER.enable()


class TestPhaseProfiler:
    def test_disabled_by_default_returns_shared_noop(self):
        profiler = PhaseProfiler()
        assert not profiler.enabled
        first = profiler.phase("a")
        second = profiler.phase("b", "detail")
        # One shared no-op object: the disabled hook never allocates.
        assert first is second
        with first:
            pass
        assert profiler.snapshot() == {}

    def test_accumulates_counts_and_wall_time(self):
        profiler = PhaseProfiler()
        profiler.enable()
        for _ in range(3):
            with profiler.phase("stage"):
                pass
        snapshot = profiler.snapshot()
        assert snapshot["stage"]["count"] == 3
        assert snapshot["stage"]["total_s"] >= 0.0
        assert snapshot["stage"]["mean_s"] == pytest.approx(
            snapshot["stage"]["total_s"] / 3)

    def test_details_format_lazily_into_the_name(self):
        profiler = PhaseProfiler()
        profiler.enable()
        with profiler.phase("engine.sweep", "colour", "cext"):
            pass
        assert list(profiler.snapshot()) == ["engine.sweep[colour/cext]"]

    def test_merge_and_delta_round_trip(self):
        local = PhaseProfiler()
        local.enable()
        with local.phase("decode"):
            pass
        baseline = local.raw()
        with local.phase("decode"):
            pass
        with local.phase("sweep"):
            pass
        delta = local.delta_since(baseline)
        assert {name: count for name, (count, _) in delta.items()} == \
            {"decode": 1, "sweep": 1}
        # The worker-pool path: ship the delta, merge it into another
        # profiler, arrive at the same counts.
        parent = PhaseProfiler()
        parent.merge(baseline)
        parent.merge(delta)
        assert {name: count for name, (count, _) in parent.raw().items()} \
            == {name: count for name, (count, _) in local.raw().items()}
        parent.merge(None)  # no-op
        parent.reset()
        assert parent.raw() == {}


class TestComputeLayerHooks:
    def test_profiled_decode_attributes_expected_phases(self):
        decoder = QuAMaxDecoder(
            QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
            AnnealerParameters(num_anneals=6))
        use = MimoUplink(num_users=2, constellation="BPSK").transmit(
            random_state=3)
        PROFILER.reset()
        PROFILER.enable()
        decoder.detect_with_run(use, random_state=11)
        PROFILER.disable()
        phases = PROFILER.snapshot()
        prefixes = {name.split("[")[0] for name in phases}
        assert {"decoder.reduce", "machine.embed", "machine.anneal",
                "engine.sweep", "machine.unembed"} <= prefixes
        assert all(entry["count"] >= 1 for entry in phases.values())

    def test_profiling_is_bit_stream_neutral(self):
        decoder = QuAMaxDecoder(
            QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
            AnnealerParameters(num_anneals=6))
        use = MimoUplink(num_users=2, constellation="QPSK").transmit(
            random_state=4)
        plain = decoder.detect_with_run(use, random_state=21)
        PROFILER.enable()
        profiled = decoder.detect_with_run(use, random_state=21)
        PROFILER.disable()
        np.testing.assert_array_equal(plain.detection.bits,
                                      profiled.detection.bits)
        assert plain.detection.metric == profiled.detection.metric
