"""Lifecycle-tracing invariants of the C-RAN serving path.

A traced run (``CranService(tracing=True)``) must tell the truth about
itself.  Hypothesis drives randomised offered loads and batching policies
through an inline service and checks the contracts everything downstream
(the exporters, the breakdown report, the examples) relies on:

* completeness — every submitted job yields exactly one lifecycle:
  one ``job.admit`` followed by exactly one ``job.complete`` *or* one
  ``job.shed``, never both, never neither;
* causal span chains — ``admit ≤ flush ≤ start ≤ finish`` on the virtual
  clock, and pack stamps agree with every member's timeline;
* exact coverage — pack spans partition the completed jobs: each job
  appears in exactly one pack, and a pack's span covers exactly the jobs
  that rode in it;
* exact decomposition — ``queue + dispatch + overhead + anneal`` equals
  the job's end-to-end latency, and the trace's latencies equal the worker
  pool's own virtual-time accounting;
* determinism — an inline traced run is a bit-deterministic function of
  the offered load: replaying yields the identical event stream, and
  detections are bit-identical with tracing on or off.

Shed paths (pool overload) are covered separately with a deterministic
queue-stuffing setup, since the inline service never sheds.
"""

import math

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.annealer.chimera import ChimeraGraph
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.cran.jobs import DecodeJob
from repro.cran.scheduler import DecodeBatch
from repro.cran.service import CranService
from repro.cran.tracing import (
    EVENT_JOB_ADMIT,
    EVENT_JOB_COMPLETE,
    EVENT_JOB_SHED,
    EVENT_PACK_COMPLETE,
    EVENT_PACK_DISPATCH,
    EVENT_PACK_FLUSH,
    EVENT_PACK_START,
    JOB_STAGES,
    TraceRecorder,
    job_timelines,
    pack_spans,
)
from repro.cran.workers import WorkerPool
from repro.decoder.quamax import QuAMaxDecoder
from repro.mimo.system import MimoUplink


@pytest.fixture(scope="module")
def decoder():
    return QuAMaxDecoder(QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4)),
                         AnnealerParameters(num_anneals=8))


#: A few real channel uses, one per problem structure; every synthetic job
#: borrows one, so structure keys — and decodes — are genuine but cheap.
_CHANNEL_POOL = [
    MimoUplink(num_users=2, constellation="BPSK").transmit(random_state=0),
    MimoUplink(num_users=2, constellation="QPSK").transmit(random_state=1),
]


def make_jobs(spec):
    """Jobs in arrival order from ``(gap, structure, slack)`` triples."""
    jobs = []
    now = 0.0
    for job_id, (gap, structure, slack) in enumerate(spec):
        now += gap
        jobs.append(DecodeJob(
            job_id=job_id, user_id=structure, frame=0, subcarrier=job_id,
            channel_use=_CHANNEL_POOL[structure],
            arrival_time_us=now, deadline_us=now + slack,
            seed=1000 + job_id))
    return jobs


@st.composite
def offered_loads(draw):
    """An offered load plus a batching policy for a traced inline run."""
    spec = draw(st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2_000.0),   # inter-arrival µs
            st.integers(min_value=0, max_value=len(_CHANNEL_POOL) - 1),
            st.one_of(                                     # deadline slack µs
                st.just(math.inf),
                st.floats(min_value=100.0, max_value=100_000.0)),
        ),
        min_size=1, max_size=10))
    max_batch = draw(st.integers(min_value=1, max_value=4))
    max_wait_us = draw(st.one_of(
        st.just(math.inf),
        st.floats(min_value=10.0, max_value=5_000.0)))
    return spec, max_batch, max_wait_us


def traced_run(decoder, spec, max_batch, max_wait_us):
    service = CranService(decoder, max_batch=max_batch,
                          max_wait_us=max_wait_us, tracing=True)
    return service.run(make_jobs(spec))


class TestLifecycleProperties:
    @settings(max_examples=12, deadline=None)
    @given(offered_loads())
    def test_every_job_has_exactly_one_complete_lifecycle(self, decoder,
                                                          load):
        spec, max_batch, max_wait_us = load
        report = traced_run(decoder, spec, max_batch, max_wait_us)
        assert report.trace is not None
        timelines = job_timelines(report.trace)

        # Completeness: one lifecycle per submitted job, all of them —
        # the inline pool never sheds, so every job must complete.
        assert sorted(timelines) == list(range(len(spec)))
        for timeline in timelines.values():
            assert timeline.admit_count == 1
            assert timeline.complete_count == 1
            assert timeline.shed_count == 0
            assert timeline.completed and not timeline.shed

            # Causal span chain on the virtual clock.
            assert (timeline.admit_us <= timeline.flush_us
                    <= timeline.start_us <= timeline.finish_us)

            # Exact decomposition: stages sum to the end-to-end latency.
            stages = timeline.stages_us()
            assert set(stages) == set(JOB_STAGES)
            assert all(value >= 0.0 for value in stages.values())
            assert sum(stages.values()) == pytest.approx(
                timeline.latency_us, abs=1e-6)

        # The trace agrees with the pool's own virtual-time accounting.
        for result in report.results:
            timeline = timelines[result.job.job_id]
            assert timeline.admit_us == result.job.arrival_time_us
            assert timeline.flush_us == result.flush_time_us
            assert timeline.start_us == result.start_time_us
            assert timeline.finish_us == result.finish_time_us
            assert timeline.deadline_met == result.deadline_met

    @settings(max_examples=12, deadline=None)
    @given(offered_loads())
    def test_pack_spans_cover_exactly_their_member_jobs(self, decoder, load):
        spec, max_batch, max_wait_us = load
        report = traced_run(decoder, spec, max_batch, max_wait_us)
        timelines = job_timelines(report.trace)
        packs = pack_spans(report.trace)

        # The packs partition the jobs: every job in exactly one pack.
        member_ids = [job_id for pack in packs.values()
                      for job_id in pack["job_ids"]]
        assert sorted(member_ids) == list(range(len(spec)))

        for pack in packs.values():
            assert 1 <= len(pack["job_ids"]) <= max_batch
            assert pack["flush_us"] <= pack["start_us"] <= pack["finish_us"]
            for job_id in pack["job_ids"]:
                timeline = timelines[job_id]
                # Each member's timeline points back at this pack and
                # carries its stamps — the span covers exactly its members.
                assert timeline.pack_id == pack["pack_id"]
                assert timeline.flush_us == pack["flush_us"]
                assert timeline.start_us == pack["start_us"]
                assert timeline.finish_us == pack["finish_us"]

    @settings(max_examples=6, deadline=None)
    @given(offered_loads())
    def test_inline_traced_run_is_bit_deterministic(self, decoder, load):
        spec, max_batch, max_wait_us = load
        first = traced_run(decoder, spec, max_batch, max_wait_us)
        second = traced_run(decoder, spec, max_batch, max_wait_us)
        # The whole event stream — names, stamps, ids, attrs — replays
        # identically (TraceEvent equality covers the attrs dicts).
        assert first.trace == second.trace
        for a, b in zip(first.results, second.results):
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)


class TestTracingKnob:
    def test_tracing_off_by_default_and_bits_identical(self, decoder):
        spec = [(50.0, i % 2, math.inf) for i in range(6)]
        plain = CranService(decoder, max_batch=3).run(make_jobs(spec))
        traced = CranService(decoder, max_batch=3,
                             tracing=True).run(make_jobs(spec))
        assert plain.trace is None
        assert traced.trace is not None
        # Tracing is pure observation: detections are bit-identical.
        for a, b in zip(plain.results, traced.results):
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)

    def test_event_stream_shape(self, decoder):
        spec = [(50.0, 0, math.inf) for _ in range(4)]
        report = CranService(decoder, max_batch=2,
                             tracing=True).run(make_jobs(spec))
        names = [event.name for event in report.trace]
        assert names.count(EVENT_JOB_ADMIT) == 4
        assert names.count(EVENT_JOB_COMPLETE) == 4
        assert names.count(EVENT_PACK_FLUSH) == 2
        assert names.count(EVENT_PACK_DISPATCH) == 2
        assert names.count(EVENT_PACK_START) == 2
        assert names.count(EVENT_PACK_COMPLETE) == 2
        flush = next(e for e in report.trace if e.name == EVENT_PACK_FLUSH)
        assert flush.attrs["reason"] == "full"
        assert flush.attrs["size"] == 2
        assert flush.attrs["structure"] == "2x2/BPSK"
        complete = next(e for e in report.trace
                        if e.name == EVENT_PACK_COMPLETE)
        assert complete.attrs["service_us"] == pytest.approx(
            complete.attrs["overhead_us"] + complete.attrs["anneal_us"])
        # Default recorder carries no wall-clock annotations (determinism).
        assert "wall_s" not in complete.attrs

    def test_finite_deadlines_recorded_infinite_omitted(self, decoder):
        spec = [(50.0, 0, 5_000.0), (50.0, 0, math.inf)]
        report = CranService(decoder, max_batch=2,
                             tracing=True).run(make_jobs(spec))
        admits = {e.job_id: e for e in report.trace
                  if e.name == EVENT_JOB_ADMIT}
        assert admits[0].attrs["deadline_us"] == pytest.approx(
            make_jobs(spec)[0].deadline_us)
        # inf is JSON-hostile, so unbounded deadlines stay out of the attrs.
        assert "deadline_us" not in admits[1].attrs


class TestShedTracing:
    def test_pool_overload_sheds_carry_stage_and_no_completion(self,
                                                               decoder):
        jobs = make_jobs([(50.0, 0, math.inf) for _ in range(6)])
        trace = TraceRecorder()
        pool = WorkerPool(decoder, num_workers=1, autostart=False,
                          queue_capacity=1, overload_policy="shed",
                          trace=trace)

        def batch(members, stamp):
            return DecodeBatch(jobs=tuple(members),
                               structure_key=members[0].structure_key,
                               flush_time_us=stamp, reason="full")

        # With no worker draining, the second and third packs overflow the
        # one-batch queue and shed deterministically.
        assert pool.submit(batch(jobs[0:2], 10.0))
        assert not pool.submit(batch(jobs[2:4], 20.0))
        assert not pool.submit(batch(jobs[4:6], 30.0))
        pool.start()
        pool.close()

        timelines = job_timelines(trace.events())
        shed_ids = {job.job_id for job in pool.shed_jobs}
        assert shed_ids == {2, 3, 4, 5}
        for job_id, timeline in timelines.items():
            if job_id in shed_ids:
                assert timeline.shed and timeline.shed_count == 1
                assert timeline.shed_stage == "pool"
                assert not timeline.completed
            else:
                assert timeline.completed and not timeline.shed
        # Shed packs never get start/complete span events.
        shed_events = [e for e in trace.events() if e.name == EVENT_JOB_SHED]
        assert {e.attrs["stage"] for e in shed_events} == {"pool"}
        started = {e.pack_id for e in trace.events()
                   if e.name == EVENT_PACK_START}
        assert started == {0}
