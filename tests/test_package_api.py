"""Tests for the top-level package API and the constants module."""

import importlib

import pytest

import repro
from repro import constants


class TestPublicApi:
    def test_version(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), f"{name} missing from repro"

    def test_key_classes_exposed(self):
        assert repro.QuAMaxDecoder is not None
        assert repro.QuantumAnnealerSimulator is not None
        assert repro.MimoUplink is not None
        assert repro.SphereDecoder is not None

    @pytest.mark.parametrize("module", [
        "repro.modulation", "repro.channel", "repro.mimo", "repro.detectors",
        "repro.ising", "repro.transform", "repro.annealer", "repro.decoder",
        "repro.metrics", "repro.experiments", "repro.utils",
    ])
    def test_subpackages_importable(self, module):
        assert importlib.import_module(module) is not None

    def test_experiment_drivers_expose_run_and_format(self):
        from repro import experiments
        drivers = [experiments.table1, experiments.table2, experiments.fig04,
                   experiments.fig05, experiments.fig06, experiments.fig07,
                   experiments.fig08, experiments.fig09, experiments.fig10,
                   experiments.fig11, experiments.fig12, experiments.fig13,
                   experiments.fig14, experiments.fig15]
        for driver in drivers:
            assert callable(driver.run)
            assert callable(driver.format_result)


class TestConstants:
    def test_dw2q_counts(self):
        assert constants.DW2Q_WORKING_QUBITS == 2031
        assert constants.CHIMERA_C16_IDEAL_QUBITS == 2048
        assert constants.DW2Q_COUPLERS == 5019

    def test_anneal_time_window(self):
        assert constants.MIN_ANNEAL_TIME_US == 1.0
        assert constants.MAX_ANNEAL_TIME_US == 300.0
        assert (constants.MIN_ANNEAL_TIME_US
                <= constants.DEFAULT_ANNEAL_TIME_US
                <= constants.MAX_ANNEAL_TIME_US)

    def test_ice_statistics_sign_convention(self):
        # Linear shifts are slightly positive, coupling shifts slightly
        # negative, both with larger standard deviations than means.
        assert constants.ICE_LINEAR_MEAN > 0
        assert constants.ICE_QUADRATIC_MEAN < 0
        assert constants.ICE_LINEAR_STD > constants.ICE_LINEAR_MEAN
        assert constants.ICE_QUADRATIC_STD > abs(constants.ICE_QUADRATIC_MEAN)

    def test_targets(self):
        assert constants.TARGET_BER == 1e-6
        assert constants.TARGET_FER == 1e-4
        assert constants.TTS_TARGET_PROBABILITY == 0.99

    def test_frame_sizes_include_paper_extremes(self):
        assert 50 in constants.FRAME_SIZES_BYTES
        assert 1500 in constants.FRAME_SIZES_BYTES

    def test_overheads_exceed_wireless_budgets(self):
        # The Section 7 point: today's QPU overheads exceed even WCDMA's
        # 10 ms processing budget.
        overhead = (constants.PREPROCESSING_TIME_US
                    + constants.PROGRAMMING_TIME_US)
        assert overhead > constants.WCDMA_DECODE_BUDGET_US


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        from repro import exceptions
        subclasses = [
            exceptions.ConfigurationError, exceptions.ModulationError,
            exceptions.ChannelError, exceptions.DetectionError,
            exceptions.ReductionError, exceptions.EmbeddingError,
            exceptions.AnnealerError, exceptions.MetricsError,
            exceptions.ExperimentError,
        ]
        for subclass in subclasses:
            assert issubclass(subclass, exceptions.ReproError)

    def test_catchable_as_base(self):
        from repro.exceptions import ModulationError, ReproError
        with pytest.raises(ReproError):
            raise ModulationError("boom")
