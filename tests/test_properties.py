"""Property-based tests (hypothesis) for the core data structures and maths."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ising.model import IsingModel, QUBOModel, bits_to_spins, spins_to_bits
from repro.metrics.ttb import InstanceSolutionProfile
from repro.mimo.frame import ber_required_for_fer, frame_error_rate_from_ber
from repro.modulation import get_constellation
from repro.modulation.gray import (
    binary_to_gray,
    bits_from_int,
    bits_to_int,
    gray_decode,
    gray_encode,
    gray_to_binary,
)
from repro.transform.posttranslate import gray_to_quamax_bits, quamax_to_gray_bits
from repro.transform.qubo_builder import build_ml_qubo, ml_metric_from_bits
from repro.transform.symbols import get_transform

# Keep hypothesis deadlines generous: several strategies build numpy problems.
COMMON_SETTINGS = settings(max_examples=40, deadline=None)


# --------------------------------------------------------------------------- #
# Gray coding
# --------------------------------------------------------------------------- #
class TestGrayProperties:
    @COMMON_SETTINGS
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_gray_roundtrip(self, value):
        assert gray_decode(gray_encode(value)) == value

    @COMMON_SETTINGS
    @given(st.integers(min_value=0, max_value=2**12 - 2))
    def test_adjacent_gray_codes_differ_in_one_bit(self, value):
        diff = gray_encode(value) ^ gray_encode(value + 1)
        assert bin(diff).count("1") == 1

    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=2**12 - 1))
    def test_bits_int_roundtrip(self, width, value):
        value = value % (1 << width)
        assert bits_to_int(bits_from_int(value, width)) == value

    @COMMON_SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=12))
    def test_binary_gray_bitvector_roundtrip(self, bits):
        bits = np.array(bits, dtype=np.uint8)
        np.testing.assert_array_equal(gray_to_binary(binary_to_gray(bits)), bits)


# --------------------------------------------------------------------------- #
# Ising / QUBO equivalence
# --------------------------------------------------------------------------- #
def ising_strategy(max_variables=6):
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_variables))
        linear = [draw(st.floats(min_value=-5, max_value=5,
                                 allow_nan=False, allow_infinity=False))
                  for _ in range(n)]
        couplings = {}
        for i in range(n):
            for j in range(i + 1, n):
                if draw(st.booleans()):
                    couplings[(i, j)] = draw(st.floats(
                        min_value=-5, max_value=5,
                        allow_nan=False, allow_infinity=False))
        offset = draw(st.floats(min_value=-10, max_value=10,
                                allow_nan=False, allow_infinity=False))
        return IsingModel(num_variables=n, linear=np.array(linear),
                          couplings=couplings, offset=offset)
    return build()


class TestIsingQuboProperties:
    @COMMON_SETTINGS
    @given(ising_strategy(), st.integers(min_value=0, max_value=2**6 - 1))
    def test_conversion_preserves_energy(self, ising, state):
        bits = np.array([(state >> k) & 1 for k in range(ising.num_variables)],
                        dtype=np.uint8)
        qubo = ising.to_qubo()
        assert qubo.energy(bits) == pytest.approx(
            ising.energy(bits_to_spins(bits)), rel=1e-9, abs=1e-7)

    @COMMON_SETTINGS
    @given(ising_strategy())
    def test_double_conversion_preserves_spectrum(self, ising):
        back = ising.to_qubo().to_ising()
        for state in range(1 << ising.num_variables):
            bits = np.array([(state >> k) & 1
                             for k in range(ising.num_variables)], dtype=np.uint8)
            spins = bits_to_spins(bits)
            assert back.energy(spins) == pytest.approx(ising.energy(spins),
                                                       rel=1e-9, abs=1e-7)

    @COMMON_SETTINGS
    @given(ising_strategy(), st.floats(min_value=0.1, max_value=10.0))
    def test_scaling_scales_energies(self, ising, factor):
        scaled = ising.scaled(factor)
        spins = np.ones(ising.num_variables)
        assert scaled.energy(spins) == pytest.approx(factor * ising.energy(spins),
                                                     rel=1e-9, abs=1e-7)

    @COMMON_SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=16))
    def test_spin_bit_roundtrip(self, bits):
        bits = np.array(bits, dtype=np.uint8)
        np.testing.assert_array_equal(spins_to_bits(bits_to_spins(bits)), bits)


# --------------------------------------------------------------------------- #
# ML reduction invariants
# --------------------------------------------------------------------------- #
class TestReductionProperties:
    @COMMON_SETTINGS
    @given(st.sampled_from(["BPSK", "QPSK", "16-QAM"]),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=2**12 - 1))
    def test_qubo_energy_equals_ml_metric(self, constellation, num_users, seed,
                                          assignment):
        rng = np.random.default_rng(seed)
        channel = rng.normal(size=(num_users, num_users)) \
            + 1j * rng.normal(size=(num_users, num_users))
        received = rng.normal(size=num_users) + 1j * rng.normal(size=num_users)
        qubo = build_ml_qubo(channel, received, constellation)
        n = qubo.num_variables
        bits = np.array([(assignment >> k) & 1 for k in range(n)], dtype=np.uint8)
        metric = ml_metric_from_bits(channel, received, constellation, bits)
        assert qubo.energy(bits) == pytest.approx(metric, rel=1e-7, abs=1e-7)

    @COMMON_SETTINGS
    @given(st.sampled_from(["16-QAM", "64-QAM"]),
           st.integers(min_value=0, max_value=2**12 - 1))
    def test_posttranslation_is_a_bijection(self, constellation, value):
        transform = get_transform(constellation)
        n = transform.bits_per_symbol
        bits = np.array([(value >> k) & 1 for k in range(n)], dtype=np.uint8)
        roundtrip = gray_to_quamax_bits(
            quamax_to_gray_bits(bits, constellation), constellation)
        np.testing.assert_array_equal(roundtrip, bits)

    @COMMON_SETTINGS
    @given(st.sampled_from(["BPSK", "QPSK", "16-QAM", "64-QAM"]),
           st.integers(min_value=0, max_value=2**12 - 1))
    def test_translated_bits_label_the_transmitted_symbol(self, name, value):
        transform = get_transform(name)
        constellation = get_constellation(name)
        n = transform.bits_per_symbol
        bits = np.array([(value >> k) & 1 for k in range(n)], dtype=np.uint8)
        symbol = transform.to_symbol(bits)
        gray = quamax_to_gray_bits(bits, name)
        np.testing.assert_array_equal(gray, constellation.symbol_to_bits(symbol))


# --------------------------------------------------------------------------- #
# Metrics invariants
# --------------------------------------------------------------------------- #
def profile_strategy():
    @st.composite
    def build(draw):
        num_solutions = draw(st.integers(min_value=1, max_value=6))
        weights = [draw(st.floats(min_value=0.01, max_value=1.0,
                                  allow_nan=False)) for _ in range(num_solutions)]
        total = sum(weights)
        probabilities = np.array([w / total for w in weights])
        num_bits = draw(st.integers(min_value=4, max_value=64))
        errors = np.array([draw(st.integers(min_value=0, max_value=num_bits))
                           for _ in range(num_solutions)], dtype=float)
        # Energy-rank order: sort errors so rank 0 is the "best" solution,
        # which mirrors how real profiles are built (not required by Eq. 9,
        # but it makes the floor interpretation meaningful).
        errors = np.sort(errors)
        duration = draw(st.floats(min_value=1.0, max_value=10.0))
        return InstanceSolutionProfile(probabilities=probabilities,
                                       bit_errors=errors, num_bits=num_bits,
                                       anneal_duration_us=duration)
    return build()


class TestMetricsProperties:
    @COMMON_SETTINGS
    @given(profile_strategy(), st.integers(min_value=1, max_value=9))
    def test_expected_ber_monotone_in_anneals(self, profile, exponent):
        smaller = profile.expected_ber(2 ** (exponent - 1))
        larger = profile.expected_ber(2 ** exponent)
        assert larger <= smaller + 1e-12

    @COMMON_SETTINGS
    @given(profile_strategy())
    def test_expected_ber_bounded(self, profile):
        for anneals in (1, 10, 1000):
            value = profile.expected_ber(anneals)
            assert 0.0 <= value <= 1.0

    @COMMON_SETTINGS
    @given(profile_strategy())
    def test_expected_ber_never_below_floor(self, profile):
        assert profile.expected_ber(10_000) >= profile.floor_ber - 1e-12

    @COMMON_SETTINGS
    @given(st.floats(min_value=1e-9, max_value=0.5), st.integers(min_value=1,
                                                                 max_value=1500))
    def test_fer_ber_inverse(self, ber, frame_size):
        fer = frame_error_rate_from_ber(ber, frame_size)
        assert 0.0 <= fer <= 1.0
        # Inversion loses precision once the FER saturates towards 1.
        if 0 < fer < 1 - 1e-9:
            recovered = ber_required_for_fer(fer, frame_size)
            assert recovered == pytest.approx(ber, rel=1e-4)
