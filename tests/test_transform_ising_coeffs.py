"""Tests for the closed-form Ising coefficients (Eqs. 6-8, Appendix C)."""

import numpy as np
import pytest

from repro.ising.model import bits_to_spins
from repro.ising.solver import BruteForceIsingSolver
from repro.mimo.system import MimoUplink
from repro.transform.ising_coeffs import (
    bpsk_coefficients,
    build_ml_ising,
    qpsk_coefficients,
    spin_weights,
)
from repro.transform.qubo_builder import build_ml_qubo


def make_channel_use(constellation, num_users, snr_db, seed):
    link = MimoUplink(num_users=num_users, constellation=constellation)
    return link.transmit(snr_db=snr_db, random_state=seed)


def all_bit_vectors(n):
    for value in range(1 << n):
        yield np.array([(value >> (n - 1 - k)) & 1 for k in range(n)],
                       dtype=np.uint8)


class TestSpinWeights:
    def test_bpsk(self):
        np.testing.assert_array_equal(spin_weights("BPSK", 3), [1, 1, 1])

    def test_qpsk(self):
        np.testing.assert_array_equal(spin_weights("QPSK", 2), [1, 1j, 1, 1j])

    def test_qam16(self):
        np.testing.assert_array_equal(spin_weights("16-QAM", 1), [2, 1, 2j, 1j])


class TestClosedFormEqualsNormExpansion:
    """The central correctness property of the paper's Section 3.2.2."""

    @pytest.mark.parametrize("constellation,num_users", [
        ("BPSK", 4), ("BPSK", 8), ("QPSK", 3), ("QPSK", 6),
        ("16-QAM", 2), ("16-QAM", 3), ("64-QAM", 2),
    ])
    def test_coefficients_match(self, constellation, num_users):
        channel_use = make_channel_use(constellation, num_users, 18.0, 11)
        closed_form = build_ml_ising(channel_use.channel, channel_use.received,
                                     constellation)
        from_qubo = build_ml_qubo(channel_use.channel, channel_use.received,
                                  constellation).to_ising()
        np.testing.assert_allclose(closed_form.linear, from_qubo.linear,
                                   atol=1e-9)
        np.testing.assert_allclose(closed_form.to_dense()[1],
                                   from_qubo.to_dense()[1], atol=1e-9)
        assert closed_form.offset == pytest.approx(from_qubo.offset, abs=1e-9)

    @pytest.mark.parametrize("constellation,num_users", [
        ("BPSK", 3), ("QPSK", 2), ("16-QAM", 1),
    ])
    def test_energies_equal_ml_metrics(self, constellation, num_users):
        channel_use = make_channel_use(constellation, num_users, 10.0, 12)
        ising = build_ml_ising(channel_use.channel, channel_use.received,
                               constellation)
        qubo = build_ml_qubo(channel_use.channel, channel_use.received,
                             constellation)
        for bits in all_bit_vectors(ising.num_variables):
            assert ising.energy(bits_to_spins(bits)) == pytest.approx(
                qubo.energy(bits), rel=1e-9, abs=1e-9)


class TestLiteralPaperFormulas:
    """Literal transcriptions of Eq. 6 (BPSK) and Eqs. 7-8 (QPSK)."""

    def test_bpsk_eq6_matches_structured_form(self):
        channel_use = make_channel_use("BPSK", 5, 14.0, 13)
        fields, couplings = bpsk_coefficients(channel_use.channel,
                                              channel_use.received)
        ising = build_ml_ising(channel_use.channel, channel_use.received, "BPSK")
        np.testing.assert_allclose(fields, ising.linear, atol=1e-9)
        np.testing.assert_allclose(couplings, ising.to_dense()[1], atol=1e-9)

    def test_qpsk_eq7_eq8_match_structured_form(self):
        channel_use = make_channel_use("QPSK", 4, 14.0, 14)
        fields, couplings = qpsk_coefficients(channel_use.channel,
                                              channel_use.received)
        ising = build_ml_ising(channel_use.channel, channel_use.received, "QPSK")
        np.testing.assert_allclose(fields, ising.linear, atol=1e-9)
        np.testing.assert_allclose(couplings, ising.to_dense()[1], atol=1e-9)

    def test_qpsk_same_user_coupling_zero(self):
        channel_use = make_channel_use("QPSK", 3, 14.0, 15)
        _, couplings = qpsk_coefficients(channel_use.channel, channel_use.received)
        for user in range(3):
            assert couplings[2 * user, 2 * user + 1] == 0.0


class TestGroundStateIsMlSolution:
    @pytest.mark.parametrize("constellation,num_users", [
        ("BPSK", 6), ("QPSK", 3), ("16-QAM", 2),
    ])
    def test_noiseless_ground_state_energy_is_zero(self, constellation, num_users):
        channel_use = make_channel_use(constellation, num_users, None, 16)
        ising = build_ml_ising(channel_use.channel, channel_use.received,
                               constellation)
        ground = BruteForceIsingSolver(max_variables=12).solve(ising)
        assert ground.best_energy == pytest.approx(0.0, abs=1e-9)

    def test_offset_free_variant(self):
        channel_use = make_channel_use("QPSK", 2, 20.0, 17)
        with_offset = build_ml_ising(channel_use.channel, channel_use.received,
                                     "QPSK", include_offset=True)
        without = build_ml_ising(channel_use.channel, channel_use.received,
                                 "QPSK", include_offset=False)
        assert without.offset == 0.0
        np.testing.assert_allclose(with_offset.linear, without.linear)
