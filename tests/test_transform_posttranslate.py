"""Tests for the bitwise post-translation (Fig. 2 of the paper)."""

import numpy as np
import pytest

from repro.exceptions import ReductionError
from repro.modulation import QAM16, QAM64, get_constellation
from repro.transform.posttranslate import (
    differential_encode,
    gray_to_quamax_bits,
    intermediate_code,
    quamax_to_gray_bits,
    quamax_to_gray_bits_two_step,
)
from repro.transform.symbols import get_transform


def all_bit_vectors(n):
    for value in range(1 << n):
        yield np.array([(value >> (n - 1 - k)) & 1 for k in range(n)],
                       dtype=np.uint8)


class TestIdentityForBinaryAxes:
    def test_bpsk_is_identity(self):
        bits = np.array([1, 0, 1], dtype=np.uint8)
        np.testing.assert_array_equal(quamax_to_gray_bits(bits, "BPSK"), bits)
        np.testing.assert_array_equal(gray_to_quamax_bits(bits, "BPSK"), bits)

    def test_qpsk_is_identity(self):
        bits = np.array([1, 0, 0, 1], dtype=np.uint8)
        np.testing.assert_array_equal(quamax_to_gray_bits(bits, "QPSK"), bits)
        np.testing.assert_array_equal(gray_to_quamax_bits(bits, "QPSK"), bits)


class TestSemanticCorrectness:
    """The translation must make receiver labels match transmitter labels."""

    @pytest.mark.parametrize("name", ["16-QAM", "64-QAM"])
    def test_translated_bits_label_the_same_symbol(self, name):
        constellation = get_constellation(name)
        transform = get_transform(name)
        for quamax_bits in all_bit_vectors(transform.bits_per_symbol):
            symbol = transform.to_symbol(quamax_bits)
            gray_bits = quamax_to_gray_bits(quamax_bits, name)
            # The Gray-coded bits must be exactly the transmitter's label for
            # that constellation point.
            np.testing.assert_array_equal(
                gray_bits, constellation.symbol_to_bits(symbol))

    @pytest.mark.parametrize("name", ["16-QAM", "64-QAM"])
    def test_roundtrip(self, name):
        transform = get_transform(name)
        for bits in all_bit_vectors(transform.bits_per_symbol):
            back = gray_to_quamax_bits(quamax_to_gray_bits(bits, name), name)
            np.testing.assert_array_equal(back, bits)

    def test_multi_user_blocks_translated_independently(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=12).astype(np.uint8)  # three 16-QAM users
        translated = quamax_to_gray_bits(bits, "16-QAM")
        for user in range(3):
            chunk = bits[4 * user:4 * user + 4]
            np.testing.assert_array_equal(
                translated[4 * user:4 * user + 4],
                quamax_to_gray_bits(chunk, "16-QAM"))


class TestPaperTwoStepDecomposition:
    """The paper's 'column flip + differential encoding' path for 16-QAM."""

    def test_intermediate_code_example(self):
        # The paper's example: 1100 becomes 1111 after the column flip.
        np.testing.assert_array_equal(
            intermediate_code([1, 1, 0, 0], "16-QAM"), [1, 1, 1, 1])

    def test_differential_encoding_example(self):
        # The paper's example: 1111 becomes 1000 after differential encoding.
        np.testing.assert_array_equal(
            differential_encode([1, 1, 1, 1], "16-QAM"), [1, 0, 0, 0])

    def test_no_flip_when_second_bit_zero(self):
        np.testing.assert_array_equal(
            intermediate_code([1, 0, 1, 0], "16-QAM"), [1, 0, 1, 0])

    def test_two_step_equals_direct_translation(self):
        for bits in all_bit_vectors(4):
            np.testing.assert_array_equal(
                quamax_to_gray_bits_two_step(bits, "16-QAM"),
                quamax_to_gray_bits(bits, "16-QAM"))

    def test_two_step_multi_user(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=8).astype(np.uint8)
        np.testing.assert_array_equal(
            quamax_to_gray_bits_two_step(bits, "16-QAM"),
            quamax_to_gray_bits(bits, "16-QAM"))

    def test_two_step_rejected_for_other_modulations(self):
        with pytest.raises(ReductionError):
            intermediate_code([1, 0], "QPSK")
        with pytest.raises(ReductionError):
            differential_encode([1, 0, 1, 0, 1, 0], "64-QAM")


class TestValidation:
    def test_partial_symbol_rejected(self):
        with pytest.raises(ReductionError):
            quamax_to_gray_bits([1, 0, 1], "16-QAM")
        with pytest.raises(ReductionError):
            gray_to_quamax_bits([1, 0, 1], "16-QAM")

    def test_non_bits_rejected(self):
        with pytest.raises(Exception):
            quamax_to_gray_bits([2, 0, 0, 0], "16-QAM")
