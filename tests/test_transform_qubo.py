"""Tests for the generic ML-to-QUBO reduction (norm expansion)."""

import numpy as np
import pytest

from repro.detectors.ml import ExhaustiveMLDetector
from repro.exceptions import ReductionError
from repro.ising.model import QUBOModel
from repro.mimo.system import MimoUplink
from repro.modulation import get_constellation
from repro.transform.posttranslate import quamax_to_gray_bits
from repro.transform.qubo_builder import build_ml_qubo, ml_metric_from_bits
from repro.transform.symbols import get_transform


def all_bit_vectors(n):
    for value in range(1 << n):
        yield np.array([(value >> (n - 1 - k)) & 1 for k in range(n)],
                       dtype=np.uint8)


def make_channel_use(constellation, num_users, snr_db, seed):
    link = MimoUplink(num_users=num_users, constellation=constellation)
    return link.transmit(snr_db=snr_db, random_state=seed)


class TestQuboStructure:
    @pytest.mark.parametrize("constellation,num_users,variables", [
        ("BPSK", 4, 4), ("QPSK", 3, 6), ("16-QAM", 2, 8), ("64-QAM", 2, 12),
    ])
    def test_variable_count(self, constellation, num_users, variables):
        channel_use = make_channel_use(constellation, num_users, 20.0, 0)
        qubo = build_ml_qubo(channel_use.channel, channel_use.received,
                             constellation)
        assert isinstance(qubo, QUBOModel)
        assert qubo.num_variables == variables

    def test_qpsk_same_user_iq_coupling_is_zero(self):
        # The paper notes the I and Q variables of one user never couple.
        channel_use = make_channel_use("QPSK", 3, 20.0, 1)
        qubo = build_ml_qubo(channel_use.channel, channel_use.received, "QPSK")
        for user in range(3):
            i_var, q_var = 2 * user, 2 * user + 1
            assert qubo.terms.get((i_var, q_var), 0.0) == pytest.approx(0.0)

    def test_qam16_same_user_iq_couplings_are_zero(self):
        channel_use = make_channel_use("16-QAM", 2, 20.0, 2)
        qubo = build_ml_qubo(channel_use.channel, channel_use.received, "16-QAM")
        for user in range(2):
            base = 4 * user
            for i_var in (base, base + 1):
                for q_var in (base + 2, base + 3):
                    assert qubo.terms.get((i_var, q_var), 0.0) == pytest.approx(0.0)


class TestQuboEnergiesEqualMlMetrics:
    @pytest.mark.parametrize("constellation,num_users", [
        ("BPSK", 3), ("QPSK", 2), ("16-QAM", 1), ("64-QAM", 1),
    ])
    def test_energy_equals_metric_for_every_assignment(self, constellation,
                                                       num_users):
        channel_use = make_channel_use(constellation, num_users, 15.0, 3)
        qubo = build_ml_qubo(channel_use.channel, channel_use.received,
                             constellation)
        for bits in all_bit_vectors(qubo.num_variables):
            metric = ml_metric_from_bits(channel_use.channel,
                                         channel_use.received,
                                         constellation, bits)
            assert qubo.energy(bits) == pytest.approx(metric, rel=1e-9, abs=1e-9)

    def test_without_offset_argmin_unchanged(self):
        channel_use = make_channel_use("QPSK", 2, 15.0, 4)
        with_offset = build_ml_qubo(channel_use.channel, channel_use.received,
                                    "QPSK", include_offset=True)
        without_offset = build_ml_qubo(channel_use.channel, channel_use.received,
                                       "QPSK", include_offset=False)
        best_with = min(all_bit_vectors(4), key=with_offset.energy)
        best_without = min(all_bit_vectors(4), key=without_offset.energy)
        np.testing.assert_array_equal(best_with, best_without)


class TestQuboArgminIsMlSolution:
    @pytest.mark.parametrize("constellation,num_users", [
        ("BPSK", 4), ("QPSK", 3), ("16-QAM", 2),
    ])
    def test_argmin_matches_exhaustive_ml(self, constellation, num_users):
        channel_use = make_channel_use(constellation, num_users, 12.0, 5)
        qubo = build_ml_qubo(channel_use.channel, channel_use.received,
                             constellation)
        best_bits = min(all_bit_vectors(qubo.num_variables), key=qubo.energy)
        decoded = quamax_to_gray_bits(best_bits, constellation)
        ml = ExhaustiveMLDetector().detect(channel_use)
        np.testing.assert_array_equal(decoded, ml.bits)

    def test_noiseless_argmin_is_transmitted_bits(self):
        channel_use = make_channel_use("16-QAM", 2, None, 6)
        qubo = build_ml_qubo(channel_use.channel, channel_use.received, "16-QAM")
        best_bits = min(all_bit_vectors(qubo.num_variables), key=qubo.energy)
        decoded = quamax_to_gray_bits(best_bits, "16-QAM")
        np.testing.assert_array_equal(decoded, channel_use.transmitted_bits)
        assert qubo.energy(best_bits) == pytest.approx(0.0, abs=1e-9)


class TestMlMetricFromBits:
    def test_mismatched_users_rejected(self):
        channel_use = make_channel_use("QPSK", 2, 20.0, 7)
        with pytest.raises(ReductionError):
            ml_metric_from_bits(channel_use.channel, channel_use.received,
                                "QPSK", [1, 0])

    def test_manual_value(self):
        channel = np.eye(1, dtype=complex)
        received = np.array([3.0 + 0j])
        # BPSK symbol for bit 1 is +1, so the metric is |3 - 1|^2 = 4.
        assert ml_metric_from_bits(channel, received, "BPSK", [1]) == pytest.approx(4.0)
