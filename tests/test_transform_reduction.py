"""Tests for the MLToIsingReducer facade and ReducedProblem."""

import numpy as np
import pytest

from repro.detectors.ml import ExhaustiveMLDetector
from repro.exceptions import ReductionError
from repro.ising.solver import BruteForceIsingSolver
from repro.mimo.system import ChannelUse, MimoUplink
from repro.modulation import QPSK
from repro.transform.reduction import MLToIsingReducer, ReducedProblem


def make_channel_use(constellation, num_users, snr_db, seed):
    link = MimoUplink(num_users=num_users, constellation=constellation)
    return link.transmit(snr_db=snr_db, random_state=seed)


class TestReduce:
    @pytest.mark.parametrize("constellation,num_users,expected_vars", [
        ("BPSK", 5, 5), ("QPSK", 4, 8), ("16-QAM", 3, 12),
    ])
    def test_variable_count(self, constellation, num_users, expected_vars):
        channel_use = make_channel_use(constellation, num_users, 20.0, 0)
        reduced = MLToIsingReducer().reduce(channel_use)
        assert isinstance(reduced, ReducedProblem)
        assert reduced.num_variables == expected_vars
        assert reduced.num_users == num_users

    def test_qubo_and_ising_share_argmin(self):
        channel_use = make_channel_use("QPSK", 3, 15.0, 1)
        reduced = MLToIsingReducer().reduce(channel_use)
        qubo = reduced.to_qubo()
        ground = BruteForceIsingSolver(max_variables=12).solve(reduced.ising)
        from repro.ising.model import spins_to_bits
        qubo_best = qubo.energy(spins_to_bits(ground.best_sample))
        # No other assignment should beat the Ising ground state in QUBO form.
        rng = np.random.default_rng(0)
        for _ in range(50):
            candidate = rng.integers(0, 2, size=qubo.num_variables)
            assert qubo.energy(candidate) >= qubo_best - 1e-9

    def test_reduce_to_qubo_helper(self):
        channel_use = make_channel_use("BPSK", 3, 20.0, 2)
        qubo = MLToIsingReducer().reduce_to_qubo(channel_use)
        assert qubo.num_variables == 3


class TestGroundTruthMapping:
    @pytest.mark.parametrize("constellation,num_users", [
        ("BPSK", 4), ("QPSK", 3), ("16-QAM", 2), ("64-QAM", 1),
    ])
    def test_ground_truth_spins_decode_to_transmitted_bits(self, constellation,
                                                           num_users):
        channel_use = make_channel_use(constellation, num_users, 25.0, 3)
        reduced = MLToIsingReducer().reduce(channel_use)
        spins = reduced.ground_truth_spins()
        decoded = reduced.bits_from_spins(spins)
        np.testing.assert_array_equal(decoded, channel_use.transmitted_bits)
        assert reduced.bit_errors(spins) == 0

    @pytest.mark.parametrize("constellation,num_users", [
        ("BPSK", 4), ("QPSK", 3), ("16-QAM", 2),
    ])
    def test_ground_truth_spins_have_zero_noiseless_energy(self, constellation,
                                                           num_users):
        channel_use = make_channel_use(constellation, num_users, None, 4)
        reduced = MLToIsingReducer().reduce(channel_use)
        energy = reduced.ising.energy(reduced.ground_truth_spins())
        assert energy == pytest.approx(0.0, abs=1e-9)

    def test_ground_truth_symbols_match_transmitted(self):
        channel_use = make_channel_use("16-QAM", 2, 30.0, 5)
        reduced = MLToIsingReducer().reduce(channel_use)
        symbols = reduced.symbols_from_spins(reduced.ground_truth_spins())
        np.testing.assert_allclose(symbols, channel_use.transmitted_symbols)

    def test_metric_of_ground_truth_spins(self):
        channel_use = make_channel_use("QPSK", 3, 20.0, 6)
        reduced = MLToIsingReducer().reduce(channel_use)
        metric = reduced.metric_of_spins(reduced.ground_truth_spins())
        noise_power = np.linalg.norm(
            channel_use.received
            - channel_use.channel @ channel_use.transmitted_symbols) ** 2
        assert metric == pytest.approx(noise_power)

    def test_missing_ground_truth_raises(self):
        channel_use = make_channel_use("QPSK", 2, 20.0, 7)
        anonymous = ChannelUse(channel=channel_use.channel,
                               received=channel_use.received,
                               constellation=QPSK)
        reduced = MLToIsingReducer().reduce(anonymous)
        with pytest.raises(ReductionError):
            reduced.ground_truth_spins()
        with pytest.raises(ReductionError):
            reduced.bit_errors(np.ones(reduced.num_variables))


class TestSolutionMapping:
    def test_ising_ground_state_decodes_to_ml_bits(self):
        channel_use = make_channel_use("16-QAM", 2, 12.0, 8)
        reduced = MLToIsingReducer().reduce(channel_use)
        ground = BruteForceIsingSolver(max_variables=12).solve(reduced.ising)
        decoded = reduced.bits_from_spins(ground.best_sample)
        ml = ExhaustiveMLDetector().detect(channel_use)
        np.testing.assert_array_equal(decoded, ml.bits)
        assert reduced.metric_of_spins(ground.best_sample) == pytest.approx(
            ml.metric, rel=1e-9)

    def test_bits_from_qubo(self):
        channel_use = make_channel_use("QPSK", 2, 20.0, 9)
        reduced = MLToIsingReducer().reduce(channel_use)
        qubo_bits = reduced.ground_truth_qubo_bits()
        np.testing.assert_array_equal(reduced.bits_from_qubo(qubo_bits),
                                      channel_use.transmitted_bits)

    def test_wrong_spin_length_rejected(self):
        channel_use = make_channel_use("BPSK", 3, 20.0, 10)
        reduced = MLToIsingReducer().reduce(channel_use)
        with pytest.raises(ReductionError):
            reduced.bits_from_spins(np.ones(5))
