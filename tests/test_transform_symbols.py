"""Tests for repro.transform.symbols (QuAMax symbol transforms)."""

import numpy as np
import pytest

from repro.exceptions import ReductionError
from repro.modulation import BPSK, QAM16, QAM64, QPSK
from repro.transform.symbols import (
    BPSK_TRANSFORM,
    QAM16_TRANSFORM,
    QAM64_TRANSFORM,
    QPSK_TRANSFORM,
    QuamaxTransform,
    get_transform,
)


class TestTransformDefinitions:
    def test_bpsk_formula(self):
        # T(q) = 2q - 1 (Section 3.2.1).
        assert BPSK_TRANSFORM.to_symbol([0]) == -1
        assert BPSK_TRANSFORM.to_symbol([1]) == 1

    def test_qpsk_formula(self):
        # T(q) = (2q1 - 1) + j(2q2 - 1).
        assert QPSK_TRANSFORM.to_symbol([0, 0]) == -1 - 1j
        assert QPSK_TRANSFORM.to_symbol([0, 1]) == -1 + 1j
        assert QPSK_TRANSFORM.to_symbol([1, 0]) == 1 - 1j
        assert QPSK_TRANSFORM.to_symbol([1, 1]) == 1 + 1j

    def test_qam16_formula(self):
        # T(q) = (4q1 + 2q2 - 3) + j(4q3 + 2q4 - 3).
        assert QAM16_TRANSFORM.to_symbol([0, 0, 0, 0]) == -3 - 3j
        assert QAM16_TRANSFORM.to_symbol([1, 1, 1, 1]) == 3 + 3j
        assert QAM16_TRANSFORM.to_symbol([1, 0, 0, 1]) == 1 - 1j
        assert QAM16_TRANSFORM.to_symbol([0, 1, 1, 0]) == -1 + 1j

    def test_qam64_formula(self):
        assert QAM64_TRANSFORM.to_symbol([0, 0, 0, 0, 0, 0]) == -7 - 7j
        assert QAM64_TRANSFORM.to_symbol([1, 1, 1, 1, 1, 1]) == 7 + 7j
        assert QAM64_TRANSFORM.to_symbol([0, 1, 1, 0, 0, 0]) == -1 - 7j
        assert QAM64_TRANSFORM.to_symbol([1, 0, 1, 0, 1, 1]) == 3 - 1j

    @pytest.mark.parametrize("transform,constellation", [
        (BPSK_TRANSFORM, BPSK), (QPSK_TRANSFORM, QPSK),
        (QAM16_TRANSFORM, QAM16), (QAM64_TRANSFORM, QAM64),
    ])
    def test_image_is_exactly_the_constellation(self, transform, constellation):
        # The transform must cover every constellation point exactly once.
        bits_per_symbol = transform.bits_per_symbol
        symbols = set()
        for value in range(1 << bits_per_symbol):
            bits = [(value >> (bits_per_symbol - 1 - k)) & 1
                    for k in range(bits_per_symbol)]
            symbols.add(transform.to_symbol(bits))
        assert symbols == set(complex(p) for p in constellation.points)

    @pytest.mark.parametrize("transform", [
        BPSK_TRANSFORM, QPSK_TRANSFORM, QAM16_TRANSFORM, QAM64_TRANSFORM,
    ])
    def test_spin_form_has_zero_mean(self, transform):
        # offset + sum(weights)/2 == 0, the property that makes the spin-form
        # coefficients (Eqs. 6-8) have no constant per-variable shift.
        center = transform.offset + sum(transform.weights) / 2.0
        assert center == pytest.approx(0.0)


class TestTransformOperations:
    def test_to_symbols_multiple_users(self):
        symbols = QPSK_TRANSFORM.to_symbols([1, 1, 0, 0])
        np.testing.assert_array_equal(symbols, [1 + 1j, -1 - 1j])

    def test_to_symbols_rejects_partial_group(self):
        with pytest.raises(ReductionError):
            QAM16_TRANSFORM.to_symbols([1, 0, 1])

    def test_from_symbol_roundtrip(self):
        for value in range(16):
            bits = np.array([(value >> (3 - k)) & 1 for k in range(4)],
                            dtype=np.uint8)
            symbol = QAM16_TRANSFORM.to_symbol(bits)
            np.testing.assert_array_equal(QAM16_TRANSFORM.from_symbol(symbol), bits)

    def test_from_symbol_rejects_non_image_point(self):
        with pytest.raises(ReductionError):
            QPSK_TRANSFORM.from_symbol(0.5 + 0j)

    def test_mixing_matrix_block_diagonal(self):
        mixing, offsets = QPSK_TRANSFORM.mixing_matrix(3)
        assert mixing.shape == (3, 6)
        assert offsets.shape == (3,)
        # User 1's symbol depends only on variables 2 and 3.
        assert mixing[1, 2] == 2.0 and mixing[1, 3] == 2.0j
        assert mixing[1, 0] == 0.0 and mixing[1, 5] == 0.0

    def test_mixing_matrix_consistent_with_to_symbols(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=8)
        mixing, offsets = QAM16_TRANSFORM.mixing_matrix(2)
        via_matrix = mixing @ bits + offsets
        np.testing.assert_allclose(via_matrix, QAM16_TRANSFORM.to_symbols(bits))

    def test_mixing_matrix_invalid_users(self):
        with pytest.raises(ReductionError):
            BPSK_TRANSFORM.mixing_matrix(0)


class TestRegistry:
    def test_lookup_by_constellation(self):
        assert get_transform(QPSK) is QPSK_TRANSFORM
        assert get_transform(QAM64) is QAM64_TRANSFORM

    def test_lookup_by_name(self):
        assert get_transform("bpsk") is BPSK_TRANSFORM
        assert get_transform("16-QAM") is QAM16_TRANSFORM

    def test_unknown_rejected(self):
        with pytest.raises(Exception):
            get_transform("8-PSK")
