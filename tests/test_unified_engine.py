"""Equivalence and determinism tests for the unified Metropolis core.

Covers the contracts the perf refactor relies on:

* the vectorised :class:`SimulatedAnnealingSolver` is statistically
  indistinguishable from the scalar :func:`metropolis_anneal` reference loop
  on a brute-force-verifiable problem;
* :meth:`IsingSampler.refresh_values` rebinds a sampler bit-for-bit
  identically to constructing a fresh one;
* :class:`BlockDiagonalSampler` anneals are bit-for-bit the per-block serial
  anneals, and :meth:`QuantumAnnealerSimulator.run_batch` therefore matches
  serial :meth:`~QuantumAnnealerSimulator.run` submissions;
* the batched pipeline decode equals the serial decode per subcarrier for a
  fixed seed.
"""

import numpy as np
import pytest

from repro.annealer.chimera import ChimeraGraph
from repro.annealer.engine import (
    BlockDiagonalSampler,
    IsingSampler,
    colour_classes,
    sparse_coupling_matrix,
)
from repro.annealer.machine import AnnealerParameters, QuantumAnnealerSimulator
from repro.decoder.pipeline import OFDMDecodingPipeline
from repro.decoder.quamax import QuAMaxDecoder
from repro.exceptions import AnnealerError
from repro.ising.model import IsingModel
from repro.ising.solver import BruteForceIsingSolver, SimulatedAnnealingSolver
from repro.mimo.system import MimoUplink
from repro.utils.random import child_rngs


def random_ising(num_variables, seed, density=1.0):
    rng = np.random.default_rng(seed)
    couplings = {}
    for i in range(num_variables):
        for j in range(i + 1, num_variables):
            if rng.random() <= density:
                couplings[(i, j)] = float(rng.normal())
    return IsingModel(num_variables=num_variables,
                      linear=rng.normal(size=num_variables),
                      couplings=couplings)


def solver_results_equal(a, b):
    return (np.array_equal(a.samples, b.samples)
            and np.array_equal(a.energies, b.energies)
            and np.array_equal(a.num_occurrences, b.num_occurrences))


class TestVectorisedSimulatedAnnealing:
    """Vectorised sample() vs. the scalar metropolis_anneal reference."""

    def test_both_reach_exact_ground_state(self):
        ising = random_ising(12, 0)
        exact = BruteForceIsingSolver().ground_energy(ising)
        solver = SimulatedAnnealingSolver(num_sweeps=150, num_reads=60)
        vectorised = solver.sample(ising, random_state=1)
        reference = solver.sample_reference(ising, random_state=1)
        assert vectorised.best_energy == pytest.approx(exact)
        assert reference.best_energy == pytest.approx(exact)

    def test_energy_distributions_statistically_indistinguishable(self):
        ising = random_ising(12, 1)
        solver = SimulatedAnnealingSolver(num_sweeps=100, num_reads=200)
        vectorised = solver.sample(ising, random_state=2)
        reference = solver.sample_reference(ising, random_state=2)

        def read_energies(result):
            return np.repeat(result.energies, result.num_occurrences)

        vec = read_energies(vectorised)
        ref = read_energies(reference)
        # Same read count, and mean energies within two standard errors of
        # each other (same-seed runs are deterministic, so no flakiness).
        assert vec.size == ref.size == 200
        pooled_sem = np.hypot(vec.std(ddof=1) / np.sqrt(vec.size),
                              ref.std(ddof=1) / np.sqrt(ref.size))
        assert abs(vec.mean() - ref.mean()) <= 2.5 * max(pooled_sem, 1e-12)
        # Both land most reads at or near the ground state.
        exact = BruteForceIsingSolver().ground_energy(ising)
        assert vectorised.ground_state_probability(exact, 1e-9) > 0.3
        assert reference.ground_state_probability(exact, 1e-9) > 0.3

    def test_same_seed_is_deterministic(self):
        ising = random_ising(10, 2)
        solver = SimulatedAnnealingSolver(num_sweeps=50, num_reads=25)
        first = solver.sample(ising, random_state=7)
        second = solver.sample(ising, random_state=7)
        assert solver_results_equal(first, second)

    def test_sample_reference_matches_manual_loop(self):
        from repro.ising.solver import aggregate_samples, metropolis_anneal

        ising = random_ising(8, 3)
        solver = SimulatedAnnealingSolver(num_sweeps=40, num_reads=10)
        result = solver.sample_reference(ising, random_state=5)
        rng = np.random.default_rng(5)
        temperatures = solver.temperature_schedule_for(ising)
        raw = np.stack([metropolis_anneal(ising, temperatures, rng)
                        for _ in range(10)])
        assert solver_results_equal(result, aggregate_samples(ising, raw))


class TestSparseCouplingMatrix:
    def test_empty_couplings_canonical_dtype(self):
        ising = IsingModel(num_variables=4, linear=np.ones(4))
        matrix = sparse_coupling_matrix(ising)
        assert matrix.dtype == np.float64
        assert matrix.shape == (4, 4)
        assert matrix.nnz == 0

    def test_matches_dense_form(self):
        ising = random_ising(7, 4, density=0.5)
        _, dense = ising.to_dense()
        symmetric = dense + dense.T
        np.testing.assert_allclose(sparse_coupling_matrix(ising).toarray(),
                                   symmetric)


class TestRefreshValues:
    def _clusters(self, n):
        return [np.arange(0, n // 2, dtype=np.intp),
                np.arange(n // 2, n, dtype=np.intp)]

    def test_refresh_equals_fresh_construction(self):
        base = random_ising(10, 5, density=0.6)
        other = random_ising(10, 6, density=1.0)
        # Same structure: reuse base's keys with other's values.
        rng = np.random.default_rng(0)
        replacement = IsingModel(
            num_variables=10,
            linear=rng.normal(size=10),
            couplings={key: float(rng.normal())
                       for key in base.couplings})
        del other
        clusters = self._clusters(10)
        refreshed = IsingSampler(base, clusters=clusters)
        refreshed.refresh_values(replacement)
        fresh = IsingSampler(replacement, classes=refreshed.classes,
                             clusters=clusters)
        temperatures = [2.0, 1.0, 0.5, 0.1]
        a = refreshed.anneal(temperatures, 8, random_state=3)
        b = fresh.anneal(temperatures, 8, random_state=3)
        np.testing.assert_array_equal(a, b)

    def test_refresh_rejects_different_structure(self):
        sampler = IsingSampler(random_ising(8, 7, density=0.5))
        with pytest.raises(AnnealerError):
            sampler.refresh_values(random_ising(8, 8, density=1.0))
        with pytest.raises(AnnealerError):
            sampler.refresh_values(random_ising(6, 7, density=0.5))

    def test_refresh_updates_energies(self):
        base = random_ising(6, 9)
        scaled = base.scaled(2.0)
        sampler = IsingSampler(base)
        sampler.refresh_values(scaled)
        dense = sampler._matrix.toarray()
        _, upper = scaled.to_dense()
        np.testing.assert_allclose(dense, upper + upper.T)
        np.testing.assert_allclose(sampler.linear, scaled.linear)


class TestBlockDiagonalSampler:
    def _same_structure_problems(self, count, n, seed):
        base = random_ising(n, seed, density=0.7)
        problems = []
        rng = np.random.default_rng(seed + 100)
        for _ in range(count):
            problems.append(IsingModel(
                num_variables=n,
                linear=rng.normal(size=n),
                couplings={key: float(rng.normal())
                           for key in base.couplings}))
        return problems

    def test_blocked_anneal_matches_serial_per_block(self):
        problems = self._same_structure_problems(4, 9, 10)
        clusters = [np.array([0, 1, 2], dtype=np.intp),
                    np.array([5, 6], dtype=np.intp)]
        classes = colour_classes(problems[0])
        blocked = BlockDiagonalSampler(problems, classes=classes,
                                       clusters=clusters)
        temperatures = [3.0, 1.5, 0.7, 0.2, 0.05]
        combined = blocked.anneal(temperatures, 6,
                                  [np.random.default_rng(40 + b)
                                   for b in range(4)])
        for b, (problem, block) in enumerate(
                zip(problems, blocked.split_samples(combined))):
            serial = IsingSampler(problem, classes=classes,
                                  clusters=clusters).anneal(
                temperatures, 6, random_state=np.random.default_rng(40 + b))
            np.testing.assert_array_equal(block, serial)

    def test_structure_mismatch_rejected(self):
        problems = self._same_structure_problems(2, 8, 11)
        mismatched = random_ising(8, 99, density=0.3)
        with pytest.raises(AnnealerError):
            BlockDiagonalSampler([problems[0], mismatched])

    def test_refresh_values_matches_reconstruction(self):
        problems = self._same_structure_problems(3, 8, 12)
        rng = np.random.default_rng(5)
        replacements = [
            IsingModel(num_variables=8, linear=rng.normal(size=8),
                       couplings={key: float(rng.normal())
                                  for key in problems[0].couplings})
            for _ in range(3)
        ]
        sampler = BlockDiagonalSampler(problems)
        sampler.refresh_values(replacements)
        fresh = BlockDiagonalSampler(replacements,
                                     classes=sampler.block_classes)
        rngs_a = [np.random.default_rng(60 + b) for b in range(3)]
        rngs_b = [np.random.default_rng(60 + b) for b in range(3)]
        np.testing.assert_array_equal(
            sampler.anneal([1.0, 0.4], 5, rngs_a),
            fresh.anneal([1.0, 0.4], 5, rngs_b))

    @pytest.mark.parametrize("density", [0.3, 0.7, 1.0])
    def test_lexsort_entry_maps_match_scipy_reference(self, density):
        """The lexsort-derived entry maps equal the permutation-matrix ones.

        `_ensure_entry_maps` derives the slot->entry maps with a direct
        lexsort; `_entry_permutation`/`_slot_entries` are kept as the scipy
        reference implementation and pinned here on every map the sampler
        builds (full matrix, colour classes, cluster operators).
        """
        from repro.annealer.engine import _entry_permutation, _slot_entries
        base = random_ising(9, 21, density=density)
        rng = np.random.default_rng(22)
        problems = [IsingModel(num_variables=9, linear=rng.normal(size=9),
                               couplings={key: float(rng.normal())
                                          for key in base.couplings})
                    for _ in range(3)]
        clusters = [np.array([0, 1, 2], dtype=np.intp),
                    np.array([5, 8], dtype=np.intp)]
        sampler = BlockDiagonalSampler(problems, clusters=clusters)
        sampler._ensure_entry_maps()
        n = sampler.num_variables
        order = _entry_permutation(sampler._entry_rows, sampler._entry_cols,
                                   (n, n))
        np.testing.assert_array_equal(sampler._matrix_entries,
                                      _slot_entries(order))
        assert len(sampler._class_entries) == len(sampler.classes)
        for entries, group in zip(sampler._class_entries, sampler.classes):
            np.testing.assert_array_equal(entries,
                                          _slot_entries(order[group, :]))
        assert len(sampler._cluster_entries) == len(sampler._cluster_columns)
        for entries, columns in zip(sampler._cluster_entries,
                                    sampler._cluster_columns):
            np.testing.assert_array_equal(entries,
                                          _slot_entries(order[columns, :]))


class TestRunBatch:
    @pytest.fixture(scope="class")
    def machine(self):
        return QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4))

    def _problems(self, machine, count, seed):
        link = MimoUplink(num_users=3, constellation="QPSK")
        rng = np.random.default_rng(seed)
        from repro.transform.reduction import MLToIsingReducer
        reducer = MLToIsingReducer()
        return [reducer.reduce(link.transmit(snr_db=15.0, random_state=rng)).ising
                for _ in range(count)]

    def test_batch_matches_serial_runs(self, machine):
        problems = self._problems(machine, 3, seed=0)
        parameters = AnnealerParameters(num_anneals=40)
        base = np.random.default_rng(17)
        children = list(child_rngs(base, len(problems)))
        batch = machine.run_batch(problems, parameters,
                                  random_states=children)
        serial_children = list(child_rngs(np.random.default_rng(17),
                                          len(problems)))
        for problem, child, result in zip(problems, serial_children, batch):
            serial = machine.run(problem, parameters, random_state=child)
            assert solver_results_equal(serial.solutions, result.solutions)
            assert serial.unembedding == result.unembedding
            assert serial.parallelization == result.parallelization

    def test_batch_rejects_mixed_sizes(self, machine):
        small = random_ising(4, 1)
        large = random_ising(6, 2)
        with pytest.raises(AnnealerError):
            machine.run_batch([small, large])

    def test_batch_needs_problems(self, machine):
        with pytest.raises(AnnealerError):
            machine.run_batch([])


class TestBatchedPipelineEquivalence:
    @pytest.fixture(scope="class")
    def pipeline(self):
        machine = QuantumAnnealerSimulator(ChimeraGraph.ideal(4, 4))
        decoder = QuAMaxDecoder(machine, AnnealerParameters(num_anneals=30),
                                random_state=0)
        return OFDMDecodingPipeline(decoder)

    def _channel_uses(self, count, seed, num_users=3):
        link = MimoUplink(num_users=num_users, constellation="QPSK")
        rng = np.random.default_rng(seed)
        return [link.transmit(snr_db=18.0, random_state=rng)
                for _ in range(count)]

    def test_batched_equals_serial_per_subcarrier(self, pipeline):
        channel_uses = self._channel_uses(6, seed=3)
        serial = pipeline.decode_subcarriers(channel_uses, random_state=9)
        batched = pipeline.decode_subcarriers_batched(channel_uses,
                                                      random_state=9)
        assert serial.num_subcarriers == batched.num_subcarriers
        for a, b in zip(serial.subcarrier_results, batched.subcarrier_results):
            assert solver_results_equal(a.result.run.solutions,
                                        b.result.run.solutions)
            np.testing.assert_array_equal(a.result.detection.bits,
                                          b.result.detection.bits)
            np.testing.assert_array_equal(a.result.detection.symbols,
                                          b.result.detection.symbols)
            assert a.bit_errors == b.bit_errors

    def test_detect_batch_handles_mixed_problem_sizes(self, pipeline):
        mixed = self._channel_uses(2, seed=4) + self._channel_uses(
            2, seed=5, num_users=2)
        outcomes = pipeline.decoder.detect_batch(mixed, random_state=1)
        assert len(outcomes) == 4
        assert [o.reduced.num_variables for o in outcomes] == [6, 6, 4, 4]

    def test_batched_frame_decode_matches_serial(self, pipeline):
        channel_uses = self._channel_uses(6, seed=6)
        serial = pipeline.decode_frame(channel_uses, frame_size_bytes=3,
                                       random_state=11)
        batched = pipeline.decode_frame(channel_uses, frame_size_bytes=3,
                                        random_state=11, batched=True)
        assert serial.bits_accumulated == batched.bits_accumulated
        assert serial.bit_errors() == batched.bit_errors()


class TestBruteForcePartialSelection:
    def test_lowest_states_match_full_sort(self):
        ising = random_ising(10, 20)
        spectrum = BruteForceIsingSolver(block_bits=6).lowest_states(
            ising, num_states=8)
        # Independent reference: full enumeration + full sort.
        all_spins = np.array(
            [[1 if (v >> k) & 1 else -1 for k in range(10)]
             for v in range(1 << 10)], dtype=np.int8)
        all_energies = ising.energies(all_spins)
        expected = np.sort(all_energies)[:8]
        np.testing.assert_allclose(np.sort(spectrum.energies), expected)

    def test_num_states_larger_than_pool_blocks(self):
        ising = random_ising(5, 21)
        spectrum = BruteForceIsingSolver(block_bits=3).lowest_states(
            ising, num_states=12)
        assert spectrum.num_samples == 12
        assert list(spectrum.energies) == sorted(spectrum.energies)
