"""Tests for repro.utils.random."""

import numpy as np
import pytest

from repro.utils.random import child_rngs, derive_rng, ensure_rng, hash_label, spawn_seed


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnSeed:
    def test_returns_int_in_range(self):
        seed = spawn_seed(ensure_rng(3))
        assert isinstance(seed, int)
        assert 0 <= seed < 2**63

    def test_deterministic_given_rng_state(self):
        assert spawn_seed(ensure_rng(5)) == spawn_seed(ensure_rng(5))


class TestChildRngs:
    def test_count(self):
        children = list(child_rngs(0, 4))
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = list(child_rngs(0, 2))
        a = children[0].integers(0, 10**9, size=10)
        b = children[1].integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        first = [g.integers(0, 10**9) for g in child_rngs(11, 3)]
        second = [g.integers(0, 10**9) for g in child_rngs(11, 3)]
        assert first == second

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            list(child_rngs(0, -1))

    def test_zero_count(self):
        assert list(child_rngs(0, 0)) == []

    def test_generator_input(self):
        children = list(child_rngs(np.random.default_rng(0), 2))
        assert len(children) == 2


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        a = derive_rng(1, "experiment", 3).integers(0, 10**9, size=4)
        b = derive_rng(1, "experiment", 3).integers(0, 10**9, size=4)
        np.testing.assert_array_equal(a, b)

    def test_different_labels_differ(self):
        a = derive_rng(1, "experiment", 3).integers(0, 10**9)
        b = derive_rng(1, "experiment", 4).integers(0, 10**9)
        assert a != b

    def test_different_seed_differs(self):
        a = derive_rng(1, "x").integers(0, 10**9)
        b = derive_rng(2, "x").integers(0, 10**9)
        assert a != b

    def test_none_seed_supported(self):
        assert isinstance(derive_rng(None, "x"), np.random.Generator)


class TestHashLabel:
    def test_stable(self):
        assert hash_label("table1") == hash_label("table1")

    def test_distinct(self):
        assert hash_label("a") != hash_label("b")

    def test_32bit(self):
        assert 0 <= hash_label("anything") < 2**32
