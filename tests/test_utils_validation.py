"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_integer_in_range,
    check_positive,
    check_probability,
    ensure_bit_array,
    ensure_complex_matrix,
    ensure_complex_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3.5) == 3.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1.0, strict=False)


class TestCheckProbability:
    def test_accepts_interior(self):
        assert check_probability("p", 0.5) == 0.5

    def test_accepts_bounds_by_default(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_zero_when_disallowed(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", 0.0, allow_zero=False)

    def test_rejects_one_when_disallowed(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.0, allow_one=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.5)
        with pytest.raises(ConfigurationError):
            check_probability("p", -0.1)


class TestCheckIntegerInRange:
    def test_accepts_in_range(self):
        assert check_integer_in_range("n", 5, minimum=1, maximum=10) == 5

    def test_rejects_below_minimum(self):
        with pytest.raises(ConfigurationError):
            check_integer_in_range("n", 0, minimum=1)

    def test_rejects_above_maximum(self):
        with pytest.raises(ConfigurationError):
            check_integer_in_range("n", 11, maximum=10)

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_integer_in_range("n", 1.5)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_integer_in_range("n", True)

    def test_accepts_numpy_integer(self):
        assert check_integer_in_range("n", np.int64(7)) == 7


class TestEnsureBitArray:
    def test_valid_bits(self):
        out = ensure_bit_array([0, 1, 1, 0])
        assert out.dtype == np.uint8
        np.testing.assert_array_equal(out, [0, 1, 1, 0])

    def test_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            ensure_bit_array([0, 2])

    def test_rejects_wrong_length(self):
        with pytest.raises(ConfigurationError):
            ensure_bit_array([0, 1], length=3)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            ensure_bit_array([[0, 1]])

    def test_empty_allowed(self):
        assert ensure_bit_array([]).size == 0


class TestEnsureComplexVector:
    def test_valid(self):
        out = ensure_complex_vector("v", [1, 2j])
        assert out.dtype == np.complex128

    def test_rejects_matrix(self):
        with pytest.raises(ConfigurationError):
            ensure_complex_vector("v", [[1, 2], [3, 4]])

    def test_length_check(self):
        with pytest.raises(ConfigurationError):
            ensure_complex_vector("v", [1, 2], length=3)


class TestEnsureComplexMatrix:
    def test_valid(self):
        out = ensure_complex_matrix("m", [[1, 2], [3, 4]])
        assert out.shape == (2, 2)

    def test_rejects_vector(self):
        with pytest.raises(ConfigurationError):
            ensure_complex_matrix("m", [1, 2])

    def test_shape_check(self):
        with pytest.raises(ConfigurationError):
            ensure_complex_matrix("m", [[1, 2]], shape=(2, 2))
